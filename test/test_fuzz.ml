(** Fuzz testing: generate random (well-formed) IR programs directly
    through the Builder API and check, for random strategies, that

    - the native solver and the Datalog reference implementation agree
      exactly (differential), and
    - concrete execution stays within the analysis (soundness).

    This explores program shapes the hand-written battery and the
    structured workload generator would never produce. *)

module Ir = Pta_ir.Ir
module Rng = Pta_workloads.Rng
open Ir

(* Build a random program: a small class forest, methods with random
   bodies over the locally visible variables, and a static main. *)
let random_program (rng : Rng.t) : Program.t =
  let b = Builder.create () in
  let object_ty =
    Builder.add_type b ~name:"Object" ~kind:Class ~superclass:None ~interfaces:[]
  in
  let n_types = 2 + Rng.int rng 3 in
  let types = Array.make n_types object_ty in
  for i = 0 to n_types - 1 do
    let superclass =
      if i = 0 || Rng.bool rng 0.4 then object_ty else types.(Rng.int rng i)
    in
    types.(i) <-
      Builder.add_type b
        ~name:(Printf.sprintf "C%d" i)
        ~kind:Class ~superclass:(Some superclass) ~interfaces:[]
  done;
  let n_fields = 1 + Rng.int rng 3 in
  let fields =
    Array.init n_fields (fun i ->
        Builder.add_field b
          ~owner:types.(Rng.int rng n_types)
          ~name:(Printf.sprintf "f%d" i)
          ~static:false)
  in
  let n_sfields = Rng.int rng 2 in
  let sfields =
    Array.init n_sfields (fun i ->
        Builder.add_field b
          ~owner:types.(Rng.int rng n_types)
          ~name:(Printf.sprintf "g%d" i)
          ~static:true)
  in
  (* Declare methods: per class, a few virtual methods from a small
     signature pool (name+arity 1), so overriding happens naturally. *)
  let sig_pool = [ "ma"; "mb"; "mc" ] in
  let meths = ref [] in
  Array.iteri
    (fun _ ty ->
      List.iter
        (fun name ->
          if Rng.bool rng 0.6 then
            meths :=
              (Builder.add_meth b ~owner:ty ~name ~arity:1 ~static:false, ty)
              :: !meths)
        sig_pool)
    types;
  let statics = ref [] in
  for i = 0 to Rng.int rng 2 do
    statics :=
      Builder.add_meth b
        ~owner:types.(Rng.int rng n_types)
        ~name:(Printf.sprintf "s%d" i)
        ~arity:1 ~static:true
      :: !statics
  done;
  let main =
    Builder.add_meth b ~owner:types.(0) ~name:"main" ~arity:0 ~static:true
  in
  Builder.add_entry b main;
  let all_meths = main :: List.map fst !meths @ !statics in
  (* Bodies: random instruction sequences over fresh locals. *)
  List.iter
    (fun m ->
      let is_main = Meth_id.equal m main in
      let n_vars = 3 + Rng.int rng 3 in
      let vars =
        Array.init n_vars (fun i ->
            Builder.add_var b ~owner:m ~name:(Printf.sprintf "v%d" i))
      in
      if not is_main then Builder.set_formals b m [ vars.(0) ];
      let var () = vars.(Rng.int rng n_vars) in
      let receiver () =
        match Builder.this_var b m with
        | Some this when Rng.bool rng 0.3 -> this
        | _ -> var ()
      in
      let n_instrs = 2 + Rng.int rng 5 in
      let heap_count = ref 0 and invo_count = ref 0 in
      let instr () : instr =
        match Rng.int rng 10 with
        | 0 | 1 ->
          let ty = types.(Rng.int rng n_types) in
          let label = Printf.sprintf "h%d" !heap_count in
          incr heap_count;
          Alloc { target = var (); heap = Builder.add_heap b ~owner:m ~label ~ty }
        | 2 -> Move { target = var (); source = receiver () }
        | 3 ->
          Load { target = var (); base = receiver (); field = fields.(Rng.int rng n_fields) }
        | 4 ->
          Store { base = receiver (); field = fields.(Rng.int rng n_fields); source = var () }
        | 5 ->
          Cast
            {
              target = var ();
              source = receiver ();
              cast_type = types.(Rng.int rng n_types);
            }
        | 6 ->
          let label = Printf.sprintf "i%d" !invo_count in
          incr invo_count;
          Virtual_call
            {
              base = receiver ();
              signature =
                Builder.intern_sig b
                  ~name:(List.nth sig_pool (Rng.int rng (List.length sig_pool)))
                  ~arity:1;
              invo = Builder.add_invo b ~owner:m ~label;
              args = [ var () ];
              ret_target = (if Rng.bool rng 0.7 then Some (var ()) else None);
            }
        | 7 | 8 -> (
          match !statics with
          | [] -> Move { target = var (); source = receiver () }
          | ss ->
            let label = Printf.sprintf "i%d" !invo_count in
            incr invo_count;
            Static_call
              {
                callee = List.nth ss (Rng.int rng (List.length ss));
                invo = Builder.add_invo b ~owner:m ~label;
                args = [ var () ];
                ret_target = (if Rng.bool rng 0.7 then Some (var ()) else None);
              })
        | _ ->
          if n_sfields = 0 then Move { target = var (); source = receiver () }
          else if Rng.bool rng 0.5 then
            Static_load { target = var (); field = sfields.(Rng.int rng n_sfields) }
          else
            Static_store { field = sfields.(Rng.int rng n_sfields); source = var () }
      in
      let rec code depth : code =
        if depth > 2 then Instr (instr ())
        else
          match Rng.int rng 8 with
          | 0 -> Branch (code (depth + 1), code (depth + 1))
          | 1 -> Loop (code (depth + 1))
          | 2 when depth < 2 ->
            let catch_var = Builder.add_var b ~owner:m ~name:"exc" in
            Try
              ( Seq [ code (depth + 1); Instr (Throw { source = var () }) ],
                [
                  {
                    catch_type = types.(Rng.int rng n_types);
                    catch_var;
                    handler_body = code (depth + 1);
                  };
                ] )
          | _ -> Instr (instr ())
      in
      let body = Seq (List.init n_instrs (fun _ -> code 0)) in
      let body =
        if Rng.bool rng 0.7 then
          Seq [ body; Instr (Move { target = Builder.ensure_ret_var b m; source = var () }) ]
        else body
      in
      Builder.set_body b m body)
    all_meths;
  Builder.freeze b

let strategies_to_try =
  [ "insens"; "1call"; "1call+H"; "1obj"; "SA-1obj"; "SB-1obj"; "2obj+H";
    "U-2obj+H"; "S-2obj+H"; "2type+H"; "3obj+2H"; "X-freemix"; "CS";
    "CS-2obj+H"; "AD-2obj+H" ]

let fuzz_differential_test () =
  for seed = 1 to 30 do
    let rng = Rng.create (Int64.of_int seed) in
    let program = random_program rng in
    let strat_name =
      List.nth strategies_to_try (Rng.int rng (List.length strategies_to_try))
    in
    let factory = Option.get (Pta_context.Strategies.by_name strat_name) in
    let strategy = factory program in
    let solver = Pta_solver.Solver.solve program strategy in
    let reference = Pta_refimpl.Refimpl.run program strategy in
    let s_vpt, s_cg, s_reach, s_throws = Test_differential.solver_facts solver in
    let r_vpt, r_cg, r_reach, r_throws = Test_differential.ref_facts reference in
    let check what a b =
      if not (Test_differential.S.equal a b) then
        Alcotest.failf "fuzz seed %d (%s): %s" seed strat_name
          (Test_differential.diff_msg what a b)
    in
    check "vpt" s_vpt r_vpt;
    check "cg" s_cg r_cg;
    check "reach" s_reach r_reach;
    check "throws" s_throws r_throws
  done

let fuzz_soundness_test () =
  for seed = 41 to 65 do
    let rng = Rng.create (Int64.of_int seed) in
    let program = random_program rng in
    let strat_name =
      List.nth strategies_to_try (Rng.int rng (List.length strategies_to_try))
    in
    let factory = Option.get (Pta_context.Strategies.by_name strat_name) in
    let strategy = factory program in
    let solver = Pta_solver.Solver.solve program strategy in
    let trace = Pta_interp.Interp.run ~seed:(Int64.of_int (seed * 7)) program in
    (* Cut-shortcut strategies carry no facts for vars inside summarized
       methods (flows are threaded caller-side); see test_soundness. *)
    let summarized =
      match strategy.Pta_context.Strategy.shortcut with
      | None -> Ir.Meth_id.Set.empty
      | Some plan -> Pta_context.Shortcut.summarized plan
    in
    List.iter
      (fun (var, heap) ->
        if
          (not
             (Ir.Meth_id.Set.mem
                (Ir.Program.var_info program var).Ir.var_owner summarized))
          && not
               (Pta_solver.Intset.mem (Ir.Heap_id.to_int heap)
                  (Pta_solver.Solver.ci_var_points_to solver var))
        then
          Alcotest.failf "fuzz seed %d (%s): unsound var fact %s -> %s" seed
            strat_name
            (Ir.Program.var_qualified_name program var)
            (Ir.Program.heap_name program heap))
      (Pta_interp.Interp.observed_var_points trace);
    List.iter
      (fun (invo, meth) ->
        if
          not
            (Ir.Meth_id.Set.mem meth (Pta_solver.Solver.invo_targets solver invo))
        then
          Alcotest.failf "fuzz seed %d (%s): unsound call edge" seed strat_name)
      (Pta_interp.Interp.observed_call_edges trace)
  done

let tests =
  [
    Alcotest.test_case "random programs: solver = reference" `Slow
      fuzz_differential_test;
    Alcotest.test_case "random programs: execution within analysis" `Slow
      fuzz_soundness_test;
  ]
