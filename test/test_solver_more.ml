(** Additional solver behaviour tests: determinism, timeouts, dispatch
    corner cases, field/context structure. *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Metrics = Pta_clients.Metrics

let run ?timeout_s src name =
  let program = Pta_frontend.Frontend.program_of_string ~file:"<t>" src in
  let factory = Option.get (Pta_context.Strategies.by_name name) in
  Solver.solve ~config:(Solver.Config.make ?timeout_s ()) program (factory program)

let determinism_test () =
  let program =
    Pta_workloads.Workloads.program
      (Option.get (Pta_workloads.Profile.by_name "tiny"))
  in
  let factory = Option.get (Pta_context.Strategies.by_name "S-2obj+H") in
  let m1 = Metrics.compute (Solver.solve program (factory program)) in
  let m2 = Metrics.compute (Solver.solve program (factory program)) in
  Alcotest.(check bool) "identical metric bundles" true (m1 = m2)

let timeout_test () =
  let program =
    Pta_workloads.Workloads.program
      (Option.get (Pta_workloads.Profile.by_name "luindex"))
  in
  let factory = Option.get (Pta_context.Strategies.by_name "U-2obj+H") in
  match Solver.solve ~config:(Solver.Config.make ~timeout_s:0.0001 ()) program (factory program) with
  | _ -> Alcotest.fail "expected Solver.Timeout"
  | exception Solver.Timeout abort ->
    Alcotest.(check bool)
      "abort payload populated" true
      (abort.Pta_obs.Budget.elapsed_s >= 0.0001
      && abort.Pta_obs.Budget.iterations > 0
      && abort.Pta_obs.Budget.nodes > 0)

let no_timeout_when_fast_test () =
  match run ~timeout_s:30. "class Main { static method main() { var x = new Main; } }" "1obj" with
  | solver -> Alcotest.(check int) "one hobj" 1 (Solver.n_hobjs solver)
  | exception Solver.Timeout _ -> Alcotest.fail "spurious timeout"

let unresolved_dispatch_test () =
  (* Calling a method that exists nowhere in the receiver's hierarchy:
     no edge, no crash — like Doop's failed dispatch. *)
  let solver =
    run
      {|
      class A { }
      class Main { static method main() { var a = new A; var r = a.ghost(a); } }
      |}
      "1obj"
  in
  let m = Metrics.compute solver in
  Alcotest.(check int) "no call edges" 0 m.Metrics.call_graph_edges;
  Alcotest.(check int) "one reachable" 1 m.Metrics.reachable_methods

let static_target_not_virtual_test () =
  (* A virtual call whose lookup would land on a static method must not
     dispatch to it. *)
  let solver =
    run
      {|
      class A { static method util() { return new A; } }
      class Main { static method main() { var a = new A; var r = a.util(); } }
      |}
      "insens"
  in
  let m = Metrics.compute solver in
  Alcotest.(check int) "no call edges" 0 m.Metrics.call_graph_edges

let null_only_flow_test () =
  let solver =
    run
      {|
      class Main {
        static method main() {
          var x = null;
          var y = x;
          var z = (Main) y;
        }
      }
      |}
      "insens"
  in
  let m = Metrics.compute solver in
  Alcotest.(check int) "no objects anywhere" 0 m.Metrics.vars_with_objs;
  (* the cast over a null-only value is trivially safe *)
  Alcotest.(check int) "no may-fail casts" 0 m.Metrics.may_fail_casts

let recursion_terminates_test () =
  (* Unbounded allocation in recursion must still reach a finite
     fixpoint thanks to bounded contexts — for a deep-context analysis. *)
  let solver =
    run
      {|
      class Node {
        field next;
        method extend() {
          var n = new Node;
          n.next = this;
          if (*) { return n.extend(); }
          return n;
        }
      }
      class Main {
        static method main() {
          var root = new Node;
          var chain = root.extend();
          var hop = chain.next;
        }
      }
      |}
      "3obj+2H"
  in
  Alcotest.(check bool) "finite contexts" true (Solver.n_ctxs solver < 100)

let ctx_shapes_test () =
  (* Every context a strategy creates during a run has the arity its
     definition promises. *)
  let program =
    Pta_workloads.Workloads.program
      (Option.get (Pta_workloads.Profile.by_name "tiny"))
  in
  List.iter
    (fun (name, arity, harity) ->
      let factory = Option.get (Pta_context.Strategies.by_name name) in
      let solver = Solver.solve program (factory program) in
      for id = 0 to Solver.n_ctxs solver - 1 do
        let v = Solver.ctx_value solver id in
        if Array.length v <> arity then
          Alcotest.failf "%s: context of arity %d (expected %d)" name
            (Array.length v) arity
      done;
      for id = 0 to Solver.n_hctxs solver - 1 do
        let v = Solver.hctx_value solver id in
        if Array.length v <> harity then
          Alcotest.failf "%s: heap context of arity %d (expected %d)" name
            (Array.length v) harity
      done)
    [
      ("insens", 0, 0);
      ("1call", 1, 0);
      ("1call+H", 1, 1);
      ("1obj", 1, 0);
      ("SB-1obj", 2, 0);
      ("2obj+H", 2, 1);
      ("U-2obj+H", 3, 1);
      ("S-2obj+H", 3, 1);
      ("3obj+2H", 3, 2);
    ]

let field_sensitivity_test () =
  (* Distinct fields of the same object never conflate. *)
  let solver =
    run
      {|
      class P { field fst; field snd; }
      class A {} class B {}
      class Main {
        static method main() {
          var p = new P;
          p.fst = new A;
          p.snd = new B;
          var x = p.fst;
          var y = p.snd;
        }
      }
      |}
      "insens"
  in
  let program = Solver.program solver in
  let heap_types var_name =
    let found = ref None in
    Ir.Program.iter_vars program (fun v info ->
        if String.equal info.Ir.var_name var_name then found := Some v);
    Intset.fold
      (fun h acc ->
        Ir.Program.type_name program
          (Ir.Program.heap_info program (Ir.Heap_id.of_int h)).Ir.heap_type
        :: acc)
      (Solver.ci_var_points_to solver (Option.get !found))
      []
  in
  Alcotest.(check (list string)) "x is A" [ "A" ] (heap_types "x");
  Alcotest.(check (list string)) "y is B" [ "B" ] (heap_types "y")

(* The parallel drain under a tight budget: the cancellation token
   must reach every domain promptly — a worker that keeps draining
   after the coordinator trips the budget would blow way past the
   deadline (or deadlock the join).  The cyclic workload at jobs=4 is
   the heaviest cross-partition traffic the suite has. *)
let par_budget_cancellation_test () =
  let program =
    Pta_workloads.Workloads.program
      (Option.get (Pta_workloads.Profile.by_name "cyclic"))
  in
  let factory = Option.get (Pta_context.Strategies.by_name "S-2obj+H") in
  let t0 = Unix.gettimeofday () in
  (match
     Solver.solve
       ~config:(Solver.Config.make ~timeout_s:0.02 ~jobs:4 ())
       program (factory program)
   with
  | _ -> Alcotest.fail "expected Solver.Timeout at a 0.02s budget"
  | exception Solver.Timeout abort ->
    Alcotest.(check bool)
      "abort payload populated" true
      (abort.Pta_obs.Budget.elapsed_s >= 0.02
      && abort.Pta_obs.Budget.iterations > 0));
  let wall = Unix.gettimeofday () -. t0 in
  (* Generous bound: the point is "seconds, not the full solve", and
     the full cyclic S-2obj+H solve takes far longer than this. *)
  Alcotest.(check bool)
    (Printf.sprintf "cancelled promptly (%.2fs)" wall)
    true (wall < 20.)

(* jobs beyond what the host/runtime can back must degrade, never
   crash, and report what actually ran. *)
let par_domains_used_test () =
  let program =
    Pta_workloads.Workloads.program
      (Option.get (Pta_workloads.Profile.by_name "tiny"))
  in
  let factory = Option.get (Pta_context.Strategies.by_name "1obj") in
  let solver =
    Solver.solve ~config:(Solver.Config.make ~jobs:4 ()) program
      (factory program)
  in
  let used = Solver.domains_used solver in
  Alcotest.(check bool)
    (Printf.sprintf "domains_used in range (%d)" used)
    true
    (used >= 1 && used <= 4)

let tests =
  [
    Alcotest.test_case "determinism" `Quick determinism_test;
    Alcotest.test_case "timeout raised" `Quick timeout_test;
    Alcotest.test_case "parallel budget cancellation (jobs=4)" `Quick
      par_budget_cancellation_test;
    Alcotest.test_case "parallel domains_used degrades in range" `Quick
      par_domains_used_test;
    Alcotest.test_case "no spurious timeout" `Quick no_timeout_when_fast_test;
    Alcotest.test_case "unresolved dispatch is silent" `Quick unresolved_dispatch_test;
    Alcotest.test_case "virtual call skips static target" `Quick
      static_target_not_virtual_test;
    Alcotest.test_case "null-only flows" `Quick null_only_flow_test;
    Alcotest.test_case "recursive allocation terminates deeply" `Quick
      recursion_terminates_test;
    Alcotest.test_case "context arities match definitions" `Quick ctx_shapes_test;
    Alcotest.test_case "field sensitivity" `Quick field_sensitivity_test;
  ]
