(** Tests for provenance witness chains. *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Provenance = Pta_clients.Provenance

let setup src =
  let program = Pta_frontend.Frontend.program_of_string ~file:"<t>" src in
  Solver.solve program (Pta_context.Strategies.get "1obj" program)

let find_var solver meth_name var_name =
  let program = Solver.program solver in
  let found = ref None in
  Ir.Program.iter_vars program (fun v info ->
      let owner = Ir.Program.meth_info program info.Ir.var_owner in
      if owner.Ir.meth_name = meth_name && info.Ir.var_name = var_name then
        found := Some v);
  Option.get !found

let find_heap solver ty_name =
  let program = Solver.program solver in
  let found = ref None in
  Ir.Program.iter_heaps program (fun h info ->
      if Ir.Program.type_name program info.Ir.heap_type = ty_name then
        found := Some h);
  Option.get !found

let chain_test () =
  let solver =
    setup
      {|
      class Box { field content;
        method put(x) { this.content = x; return this; }
        method get() { return this.content; }
      }
      class Gift {}
      class Main {
        static method main() {
          var b = new Box;
          b.put(new Gift);
          var out = b.get();
        }
      }
      |}
  in
  let var = find_var solver "main" "out" in
  let heap = find_heap solver "Gift" in
  match Provenance.explain solver ~var ~heap with
  | None -> Alcotest.fail "expected a witness chain"
  | Some chain ->
    Alcotest.(check bool) "chain nonempty" true (List.length chain >= 2);
    Alcotest.(check bool) "first is origin" true (List.hd chain).Provenance.is_origin;
    let last = List.nth chain (List.length chain - 1) in
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "ends at the queried var" true
      (contains last.Provenance.description "out");
    (* The chain must pass through the box's content field. *)
    Alcotest.(check bool) "passes through the field" true
      (List.exists (fun s -> contains s.Provenance.description "content") chain)

let negative_test () =
  let solver =
    setup
      {|
      class A {} class B {}
      class Main {
        static method main() {
          var a = new A;
          var b = new B;
        }
      }
      |}
  in
  let var = find_var solver "main" "a" in
  let wrong_heap = find_heap solver "B" in
  Alcotest.(check bool) "no chain for a non-fact" true
    (Provenance.explain solver ~var ~heap:wrong_heap = None)

let direct_alloc_test () =
  let solver =
    setup
      {|
      class A {}
      class Main { static method main() { var a = new A; } }
      |}
  in
  let var = find_var solver "main" "a" in
  let heap = find_heap solver "A" in
  match Provenance.explain solver ~var ~heap with
  | Some [ only ] -> Alcotest.(check bool) "origin" true only.Provenance.is_origin
  | Some chain -> Alcotest.failf "expected length-1 chain, got %d" (List.length chain)
  | None -> Alcotest.fail "expected a chain"

(* Regression: explain on the partial state of a budget-aborted run must
   refuse cleanly (Invalid_argument), not walk the half-built supergraph
   and return a bogus chain or crash. *)
let aborted_run_test () =
  let module Budget = Pta_obs.Budget in
  let module Observer = Pta_obs.Observer in
  let program =
    Pta_workloads.Workloads.program
      (Option.get (Pta_workloads.Profile.by_name "tiny"))
  in
  let factory = Option.get (Pta_context.Strategies.by_name "S-2obj+H") in
  let budget = Budget.unlimited () in
  let iterations = ref 0 in
  let observer =
    Observer.make
      ~on_iteration:(fun () ->
        incr iterations;
        if !iterations = 5 then Budget.cancel budget)
      ()
  in
  let config = { Solver.Config.default with budget; observer } in
  match Solver.solve_outcome ~config program (factory program) with
  | Solver.Complete _ -> Alcotest.fail "expected an aborted run"
  | Solver.Aborted (partial, _abort) ->
    Alcotest.(check bool) "partial state" false (Solver.is_complete partial);
    let var = ref None in
    Ir.Program.iter_vars (Solver.program partial) (fun v _ ->
        if !var = None then var := Some v);
    let heap = ref None in
    Ir.Program.iter_heaps (Solver.program partial) (fun h _ ->
        if !heap = None then heap := Some h);
    Alcotest.check_raises "refuses partial supergraph"
      (Invalid_argument "Provenance.explain: analysis aborted before fixpoint")
      (fun () ->
        ignore
          (Provenance.explain partial ~var:(Option.get !var)
             ~heap:(Option.get !heap)))

let tests =
  [
    Alcotest.test_case "chain through call and field" `Quick chain_test;
    Alcotest.test_case "no chain for non-facts" `Quick negative_test;
    Alcotest.test_case "direct allocation" `Quick direct_alloc_test;
    Alcotest.test_case "refuses aborted runs" `Quick aborted_run_test;
  ]
