(** Tests for the bench-history subsystem: the ledger record codec and
    its strict rejections, the append-only ledger loader, the
    median+MAD changepoint check against the committed fixtures, the
    bisect search, and byte-determinism of the rendered trend page. *)

module Json = Pta_obs.Json
module Snapshot = Pta_report.Bench_snapshot
module Trend_page = Pta_report.Trend_page
module Record = Pta_bench_history.Record
module Ledger = Pta_bench_history.Ledger
module Trend = Pta_bench_history.Trend
module Bisect = Pta_bench_history.Bisect
module Census = Pta_obs.Census

let clean_fixture = "history/clean.jsonl"
let regressed_fixture = "history/regressed.jsonl"
let regressed_component_fixture = "history/regressed_component.jsonl"

let load_fixture path =
  match Ledger.load path with
  | Ok rs -> rs
  | Error e -> Alcotest.failf "fixture %s failed to load: %s" path e

let build ?(dirty = false) commit =
  { Record.semver = "1.0.0"; commit; dirty; ocaml = "5.1.0"; profile = "dev" }

let host =
  { Record.os_type = "Unix"; word_size = 64; hostname = "testhost"; cores = None }

let cell ?(timed_out = false) ?nodes ?peak_heap_words ?time_hist
    ?(heap_components = []) ?(jobs = 1) ?domains ~time_s benchmark analysis =
  {
    Record.benchmark;
    analysis;
    timed_out;
    time_s;
    iterations = 100;
    nodes;
    peak_heap_words;
    time_hist;
    heap_components;
    jobs;
    domains = Option.value ~default:jobs domains;
  }

let record ?timestamp ?note ~seq ?(dirty = false) ~commit cells =
  {
    Record.schema_version = Record.current_schema_version;
    seq;
    timestamp;
    note;
    timeout_s = 90.;
    build = build ~dirty commit;
    host;
    cells;
  }

(* A synthetic stable-then-step series as in-memory records: [n_good]
   records around [good], then [n_bad] records around [bad]. *)
let step_records ?(cellname = ("bench", "ana")) ~good ~n_good ~bad ~n_bad () =
  let b, a = cellname in
  List.init (n_good + n_bad) (fun i ->
      let t =
        if i < n_good then good +. (0.01 *. float_of_int (i mod 3))
        else bad +. (0.01 *. float_of_int (i mod 2))
      in
      record ~seq:i
        ~commit:(Printf.sprintf "c%04d" i)
        [ cell ~time_s:t ~peak_heap_words:1_000_000 b a ])

(* ------------------------------------------------------------------ *)
(* Record codec                                                        *)
(* ------------------------------------------------------------------ *)

let comps =
  [
    { Census.comp_name = "points-to-sets"; retained_words = 100_000;
      unshared_words = 320_000 };
    { Census.comp_name = "edge-lists"; retained_words = 50_000;
      unshared_words = 50_000 };
  ]

let record_roundtrip_test () =
  let hist = { Snapshot.bounds = [ 0.5; 1.0 ]; counts = [ 1; 2; 0 ]; sum = 2.4 } in
  let r =
    record ~seq:3 ~timestamp:1700000000. ~note:"ci" ~dirty:true ~commit:"abc1234"
      [
        cell ~time_s:1.5 ~nodes:4000 ~peak_heap_words:2_000_000 ~time_hist:hist
          ~heap_components:comps "antlr" "S-2obj+H";
        cell ~timed_out:true ~time_s:90. "antlr" "2full+H";
      ]
  in
  match Record.of_json (Record.to_json r) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok r' ->
    Alcotest.(check bool) "identical" true (r = r');
    Alcotest.(check string) "dirty label" "abc1234-dirty"
      (Record.commit_label r'.Record.build)

let record_rejects_test () =
  let ok_json = Record.to_json (record ~seq:0 ~commit:"abc" []) in
  let patch name v = function
    | Json.Obj fields ->
      Json.Obj (List.map (fun (k, x) -> (k, if k = name then v else x)) fields)
    | j -> j
  in
  let expect_error what json =
    match Record.of_json json with
    | Ok _ -> Alcotest.failf "%s: unexpectedly accepted" what
    | Error _ -> ()
  in
  (match Record.of_json ok_json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "baseline record rejected: %s" e);
  expect_error "future schema" (patch "schema_version" (Json.Int 99) ok_json);
  expect_error "negative seq" (patch "seq" (Json.Int (-1)) ok_json);
  expect_error "mistyped build" (patch "build" (Json.String "x") ok_json);
  expect_error "missing cells" (patch "cells" Json.Null ok_json);
  (* A malformed histogram inside a cell must reject the whole record. *)
  let bad_hist =
    Json.Obj
      [
        ("bounds", Json.List [ Json.Float 1.0; Json.Float 0.5 ]);
        ("counts", Json.List [ Json.Int 1; Json.Int 2; Json.Int 0 ]);
        ("sum", Json.Float 0.);
      ]
  in
  let r_json =
    Record.to_json
      (record ~seq:0 ~commit:"abc" [ cell ~time_s:1.0 "b" "a" ])
  in
  let with_bad_hist =
    match r_json with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "cells" then
               match v with
               | Json.List [ Json.Obj cf ] ->
                 (k, Json.List [ Json.Obj (cf @ [ ("time_hist", bad_hist) ]) ])
               | _ -> (k, v)
             else (k, v))
           fields)
    | j -> j
  in
  expect_error "descending hist bounds" with_bad_hist

let of_snapshot_test () =
  let snap cells pointsto =
    {
      Snapshot.schema_version = 3;
      timeout_s = 90.;
      host_cores = None;
      pointsto;
      cells;
    }
  in
  let scell =
    {
      Snapshot.benchmark = "antlr";
      analysis = "1call";
      timed_out = false;
      time_s = 0.5;
      iterations = 10;
      nodes = Some 100;
      memory = None;
      time_hist = None;
      heap_components = [];
      jobs = 1;
      domains = 1;
    }
  in
  (* Stamp-less snapshots are refused: the record would be untraceable. *)
  (match
     Record.of_snapshot ~seq:0 ~host (snap [ scell ] None)
   with
  | Ok _ -> Alcotest.fail "stamp-less snapshot unexpectedly accepted"
  | Error _ -> ());
  (* A -dirty suffixed commit marks the record dirty, suffix stripped. *)
  let stamp =
    Json.Obj
      [
        ("version", Json.String "1.0.0");
        ("commit", Json.String "abc1234-dirty");
        ("ocaml", Json.String "5.1.0");
        ("profile", Json.String "dev");
      ]
  in
  match Record.of_snapshot ~seq:7 ~host (snap [ scell ] (Some stamp)) with
  | Error e -> Alcotest.failf "stamped snapshot rejected: %s" e
  | Ok r ->
    Alcotest.(check string) "bare commit" "abc1234" r.Record.build.Record.commit;
    Alcotest.(check bool) "dirty" true r.Record.build.Record.dirty;
    Alcotest.(check int) "cells carried" 1 (List.length r.Record.cells)

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)
(* ------------------------------------------------------------------ *)

let temp_ledger () = Filename.temp_file "pta_ledger" ".jsonl"

let ledger_append_test () =
  let path = temp_ledger () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sys.remove path;
      (* append re-stamps seq: 0, then 1, whatever the caller passed *)
      let r0 =
        match
          Ledger.append ~path (record ~seq:42 ~commit:"aaa" [])
        with
        | Ok r -> r
        | Error e -> Alcotest.failf "append: %s" e
      in
      Alcotest.(check int) "first seq" 0 r0.Record.seq;
      let r1 =
        match Ledger.append ~path (record ~seq:0 ~commit:"bbb" []) with
        | Ok r -> r
        | Error e -> Alcotest.failf "append: %s" e
      in
      Alcotest.(check int) "second seq" 1 r1.Record.seq;
      match Ledger.load path with
      | Error e -> Alcotest.failf "reload: %s" e
      | Ok rs ->
        Alcotest.(check int) "two records" 2 (List.length rs);
        Alcotest.(check bool) "identical round-trip" true (rs = [ r0; r1 ]))

let ledger_strict_test () =
  let write path lines =
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  let line seq = Ledger.to_line (record ~seq ~commit:"aaa" []) in
  let expect_load_error what lines =
    let path = temp_ledger () in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        write path lines;
        (match Ledger.load path with
        | Ok _ -> Alcotest.failf "%s: unexpectedly loaded" what
        | Error e ->
          Alcotest.(check bool)
            (what ^ ": error names the file and line") true
            (String.length e > String.length path
            && String.sub e 0 (String.length path) = path));
        (* a corrupt ledger also refuses appends *)
        match Ledger.append ~path (record ~seq:0 ~commit:"zzz" []) with
        | Ok _ -> Alcotest.failf "%s: append to corrupt ledger" what
        | Error _ -> ())
  in
  expect_load_error "bad JSON" [ line 0; "{not json" ];
  expect_load_error "non-increasing seq" [ line 1; line 1 ];
  expect_load_error "decreasing seq" [ line 1; line 0 ];
  let future =
    Json.to_string ~indent:false
      (match Record.to_json (record ~seq:2 ~commit:"aaa" []) with
      | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               (k, if k = "schema_version" then Json.Int 99 else v))
             fields)
      | j -> j)
  in
  expect_load_error "future schema" [ line 0; future ];
  (* blank lines are tolerated; anything else is not *)
  let path = temp_ledger () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write path [ line 0; ""; "  "; line 3 ];
      match Ledger.load path with
      | Error e -> Alcotest.failf "blank lines rejected: %s" e
      | Ok rs -> Alcotest.(check int) "two records" 2 (List.length rs))

let fixtures_load_test () =
  let clean = load_fixture clean_fixture in
  Alcotest.(check int) "clean records" 7 (List.length clean);
  let reg = load_fixture regressed_fixture in
  Alcotest.(check int) "regressed records" 8 (List.length reg);
  (* the newly added analysis appears only in the later records *)
  let with_2objh =
    List.filter
      (fun r -> Record.cell_find r ~benchmark:"antlr" ~analysis:"2obj+H" <> None)
      clean
  in
  Alcotest.(check int) "2obj+H appears late" 3 (List.length with_2objh)

(* A v1 ledger line (no heap_components) must decode into the v2
   record shape with an empty component list. *)
let v1_record_compat_test () =
  let v1 =
    {|{"schema_version":1,"seq":0,"timeout_s":90.0,
       "build":{"semver":"1.0.0","commit":"abc","dirty":false,
                "ocaml":"5.1.0","profile":"release"},
       "host":{"os_type":"Unix","word_size":64,"hostname":"h"},
       "cells":[{"benchmark":"b","analysis":"a","timed_out":false,
                 "time_s":1.0,"iterations":10}]}|}
  in
  match Result.bind (Json.of_string v1) Record.of_json with
  | Error e -> Alcotest.failf "v1 record rejected: %s" e
  | Ok r ->
    let c = List.hd r.Record.cells in
    Alcotest.(check bool) "no components" true (c.Record.heap_components = [])

(* ------------------------------------------------------------------ *)
(* Changepoint detection                                               *)
(* ------------------------------------------------------------------ *)

let window_stats_test () =
  let p = Trend.default_params in
  (* too little history: no opinion *)
  Alcotest.(check bool)
    "two points: none" true
    (Trend.window_stats p Trend.Time [ 1.0; 1.1 ] = None);
  (* below the noise floor, time has no opinion either *)
  Alcotest.(check bool)
    "sub-noise: none" true
    (Trend.window_stats p Trend.Time [ 0.01; 0.011; 0.012 ] = None);
  (* ... but heap does: it has no noise floor *)
  Alcotest.(check bool)
    "heap has no floor" true
    (Trend.window_stats p Trend.Heap [ 0.01; 0.011; 0.012 ] <> None);
  (* a constant series still gets a non-degenerate threshold from the
     relative floor (MAD = 0 must not flag jitter) *)
  match Trend.window_stats p Trend.Time [ 2.0; 2.0; 2.0; 2.0; 2.0 ] with
  | None -> Alcotest.fail "constant series: no stats"
  | Some s ->
    Alcotest.(check (float 1e-9)) "median" 2.0 s.Trend.median;
    Alcotest.(check (float 1e-9)) "mad" 0.0 s.Trend.mad;
    Alcotest.(check (float 1e-9))
      "threshold = median * (1 + tol)"
      (2.0 *. (1. +. (p.Trend.tolerances.Snapshot.time_tol_pct /. 100.)))
      s.Trend.threshold

let check_clean_test () =
  match Trend.check_latest (load_fixture clean_fixture) with
  | Error e -> Alcotest.failf "check failed: %s" e
  | Ok flags -> Alcotest.(check int) "no flags" 0 (List.length flags)

let check_regressed_test () =
  match Trend.check_latest (load_fixture regressed_fixture) with
  | Error e -> Alcotest.failf "check failed: %s" e
  | Ok flags ->
    let breach =
      List.find_map
        (function
          | Trend.Breach f
            when f.benchmark = "antlr" && f.analysis = "S-2obj+H" ->
            Some (f.metric, f.seq)
          | _ -> None)
        flags
    in
    (match breach with
    | None -> Alcotest.fail "planted time regression not flagged"
    | Some (metric, seq) ->
      Alcotest.(check bool) "time metric" true (metric = Trend.Time);
      Alcotest.(check int) "flagged at the head" 7 seq);
    let timeout_flagged =
      List.exists
        (function
          | Trend.Became_timeout f ->
            f.benchmark = "luindex" && f.analysis = "2type+H" && f.seq = 7
          | _ -> false)
        flags
    in
    Alcotest.(check bool) "new timeout flagged" true timeout_flagged;
    Alcotest.(check int) "nothing else flagged" 2 (List.length flags)

(* The component fixture plants a points-to-sets growth in its latest
   record while time and peak heap stay flat: the only flag must be the
   census-component metric. *)
let check_component_test () =
  let records = load_fixture regressed_component_fixture in
  match Trend.check_latest records with
  | Error e -> Alcotest.failf "check failed: %s" e
  | Ok flags -> (
    Alcotest.(check int) "exactly one flag" 1 (List.length flags);
    match flags with
    | [ Trend.Breach f ] ->
      Alcotest.(check bool)
        "component metric" true
        (f.metric = Trend.Heap_component "points-to-sets");
      Alcotest.(check string) "metric name" "heap:points-to-sets"
        (Trend.metric_name f.metric);
      Alcotest.(check int) "flagged at the head" 5 f.seq
    | _ -> Alcotest.fail "expected a Breach flag")

let metric_of_string_test () =
  Alcotest.(check bool) "time" true (Trend.metric_of_string "time" = Ok Trend.Time);
  Alcotest.(check bool) "heap" true (Trend.metric_of_string "heap" = Ok Trend.Heap);
  Alcotest.(check bool)
    "heap:component" true
    (Trend.metric_of_string "heap:points-to-sets"
    = Ok (Trend.Heap_component "points-to-sets"));
  Alcotest.(check bool)
    "garbage rejected" true
    (Result.is_error (Trend.metric_of_string "walrus"))

(* Bisecting the component metric over the same fixture must find the
   planted step, and its git handoff must gate only that metric. *)
let bisect_component_test () =
  let records = load_fixture regressed_component_fixture in
  let metric = Trend.Heap_component "points-to-sets" in
  match
    Bisect.run ~metric ~benchmark:"antlr" ~analysis:"S-2obj+H" records
  with
  | Error e -> Alcotest.failf "bisect: %s" e
  | Ok None -> Alcotest.fail "component bisect saw no regression"
  | Ok (Some o) ->
    Alcotest.(check int) "first bad is the planted step" 5
      o.Bisect.first_bad.Record.seq;
    (match Bisect.git_script o ~ledger:"l.jsonl" ~baseline_file:"base.json" with
    | Error e -> Alcotest.failf "git script: %s" e
    | Ok script ->
      Alcotest.(check bool)
        "script gates the component tolerance" true
        (Helpers.contains_substring script "--heap-component-tol");
      Alcotest.(check bool)
        "other metrics wide open" true
        (Helpers.contains_substring script "--time-tol 1000000"))

let check_new_analysis_test () =
  (* A cell with < min_points history must pass, whatever its value. *)
  let records =
    (step_records ~good:1.0 ~n_good:5 ~bad:1.0 ~n_bad:0 ()
    |> List.map (fun r ->
           if r.Record.seq >= 4 then
             {
               r with
               Record.cells =
                 cell ~time_s:50.0 "bench" "new-ana" :: r.Record.cells;
             }
           else r))
  in
  match Trend.check_latest records with
  | Error e -> Alcotest.failf "check failed: %s" e
  | Ok flags -> Alcotest.(check int) "new analysis passes" 0 (List.length flags)

(* ------------------------------------------------------------------ *)
(* Bisect                                                              *)
(* ------------------------------------------------------------------ *)

let bisect_finds_step_test () =
  let records = load_fixture regressed_fixture in
  match
    Bisect.run ~metric:Trend.Time ~benchmark:"antlr" ~analysis:"S-2obj+H"
      records
  with
  | Error e -> Alcotest.failf "bisect: %s" e
  | Ok None -> Alcotest.fail "bisect saw no regression"
  | Ok (Some o) ->
    Alcotest.(check int) "first bad is the planted step" 5
      o.Bisect.first_bad.Record.seq;
    (match o.Bisect.last_good with
    | Some g -> Alcotest.(check int) "last good" 4 g.Record.seq
    | None -> Alcotest.fail "no last good");
    (* O(log n): strictly fewer probes than records *)
    Alcotest.(check bool) "bisected, not scanned" true
      (List.length o.Bisect.probes < List.length records)

let bisect_clean_test () =
  match
    Bisect.run ~metric:Trend.Time ~benchmark:"antlr" ~analysis:"S-2obj+H"
      (load_fixture clean_fixture)
  with
  | Error e -> Alcotest.failf "bisect: %s" e
  | Ok (Some _) -> Alcotest.fail "clean fixture bisected to a regression"
  | Ok None -> ()

let bisect_errors_test () =
  let records = load_fixture clean_fixture in
  (match
     Bisect.run ~metric:Trend.Time ~benchmark:"nope" ~analysis:"nope" records
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "absent cell did not error");
  match Bisect.run ~metric:Trend.Time ~benchmark:"x" ~analysis:"y" [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty ledger did not error"

let git_script_test () =
  let records = step_records ~good:1.0 ~n_good:5 ~bad:2.0 ~n_bad:3 () in
  let o =
    match
      Bisect.run ~metric:Trend.Time ~benchmark:"bench" ~analysis:"ana" records
    with
    | Ok (Some o) -> o
    | Ok None -> Alcotest.fail "no regression found"
    | Error e -> Alcotest.failf "bisect: %s" e
  in
  (match Bisect.git_script o ~ledger:"hist.jsonl" ~baseline_file:"base.json" with
  | Error e -> Alcotest.failf "git_script: %s" e
  | Ok script ->
    let has needle =
      let n = String.length needle and m = String.length script in
      let rec go i = i + n <= m && (String.sub script i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "spans good..bad" true
      (has "git bisect start c0005 c0004");
    Alcotest.(check bool) "re-measures the one cell" true
      (has "--benchmarks bench --analyses ana");
    Alcotest.(check bool) "build failures skip" true (has "exit 125"));
  (* the baseline snapshot reconstructs the last-good cell *)
  let good = Option.get o.Bisect.last_good in
  (match Bisect.baseline_snapshot good ~benchmark:"bench" ~analysis:"ana" with
  | Error e -> Alcotest.failf "baseline_snapshot: %s" e
  | Ok snap ->
    Alcotest.(check int) "one cell" 1 (List.length snap.Snapshot.cells);
    let c = List.hd snap.Snapshot.cells in
    Alcotest.(check (float 1e-9))
      "good time carried" 1.01 c.Snapshot.time_s;
    Alcotest.(check bool) "peak heap carried" true
      ((Option.get c.Snapshot.memory).Pta_obs.Memstats.peak_heap_words
      = 1_000_000));
  (* a dirty endpoint refuses the handoff: the hash does not name the tree *)
  let dirty_records =
    List.map
      (fun r ->
        if r.Record.seq = 4 then
          { r with Record.build = { r.Record.build with Record.dirty = true } }
        else r)
      records
  in
  match
    Bisect.run ~metric:Trend.Time ~benchmark:"bench" ~analysis:"ana"
      dirty_records
  with
  | Ok (Some o) -> (
    match
      Bisect.git_script o ~ledger:"hist.jsonl" ~baseline_file:"base.json"
    with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "dirty endpoint did not refuse git handoff")
  | _ -> Alcotest.fail "dirty-record bisect did not find the step"

(* ------------------------------------------------------------------ *)
(* Trend page determinism                                              *)
(* ------------------------------------------------------------------ *)

let render_fixture path =
  Trend_page.render (Trend.page ~ledger:path (load_fixture path))

let render_deterministic_test () =
  List.iter
    (fun path ->
      let a = render_fixture path and b = render_fixture path in
      Alcotest.(check bool)
        (path ^ ": two renders byte-identical")
        true (a = b);
      Alcotest.(check bool)
        (path ^ ": index.html first")
        true
        (match a with ("index.html", _) :: _ -> true | _ -> false))
    [ clean_fixture; regressed_fixture ]

let render_structure_test () =
  let files = render_fixture regressed_fixture in
  (* one SVG per cell x metric, plus the index: 3 cells x 3 metrics + 1 *)
  Alcotest.(check int) "file count" 10 (List.length files);
  let index = List.assoc "index.html" files in
  let has needle hay =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (* the flagged cell's sparkline carries the changepoint marker color *)
  let flagged_svg =
    List.assoc
      (Trend_page.svg_file_name ~benchmark:"antlr" ~analysis:"S-2obj+H"
         ~metric:"time (s)")
      files
  in
  Alcotest.(check bool) "flag marker present" true (has "#c0392b" flagged_svg);
  let clean_svg =
    List.assoc
      (Trend_page.svg_file_name ~benchmark:"antlr" ~analysis:"1call"
         ~metric:"time (s)")
      files
  in
  Alcotest.(check bool) "no flag marker on the clean cell" false
    (has "#c0392b" clean_svg);
  (* dirty builds are visible on the page, as is the ledger provenance *)
  Alcotest.(check bool) "dirty stamp surfaced" true (has "d0002-dirty" index);
  Alcotest.(check bool) "ledger named" true (has regressed_fixture index)

(* ------------------------------------------------------------------ *)
(* v3: jobs-keyed cells, host cores, the cross-core-count guard        *)
(* ------------------------------------------------------------------ *)

let record_with_cores ~seq ~commit ~cores cells =
  { (record ~seq ~commit cells) with Record.host = { host with Record.cores } }

let jobs_cells_test () =
  let r =
    record ~seq:0 ~commit:"abc"
      [
        cell ~time_s:4.0 "cyclic" "insens";
        cell ~time_s:1.1 ~jobs:4 "cyclic" "insens";
      ]
  in
  (* The codec keeps both cells of the (benchmark, analysis) pair. *)
  (match Record.of_json (Record.to_json r) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok r' -> Alcotest.(check bool) "identical" true (r = r'));
  (* cell_find is jobs-keyed, defaulting to the sequential cell. *)
  (match Record.cell_find r ~benchmark:"cyclic" ~analysis:"insens" with
  | Some c -> Alcotest.(check int) "default finds jobs=1" 1 c.Record.jobs
  | None -> Alcotest.fail "sequential cell not found");
  (match Record.cell_find ~jobs:4 r ~benchmark:"cyclic" ~analysis:"insens" with
  | Some c ->
    Alcotest.(check int) "jobs=4 cell found" 4 c.Record.jobs;
    Alcotest.(check bool) "right cell" true (c.Record.time_s = 1.1)
  | None -> Alcotest.fail "parallel cell not found");
  Alcotest.(check bool) "absent jobs count" true
    (Record.cell_find ~jobs:2 r ~benchmark:"cyclic" ~analysis:"insens" = None)

let of_snapshot_cores_test () =
  (* The snapshot's own host_cores stamp overrides the appending
     host's estimate: the record must describe the measuring host. *)
  let stamp =
    Json.Obj
      [
        ("version", Json.String "1.0.0");
        ("commit", Json.String "abc1234");
        ("ocaml", Json.String "5.1.0");
        ("profile", Json.String "dev");
      ]
  in
  let snap =
    {
      Snapshot.schema_version = Snapshot.current_schema_version;
      timeout_s = 90.;
      host_cores = Some 4;
      pointsto = Some stamp;
      cells =
        [
          {
            Snapshot.benchmark = "cyclic";
            analysis = "insens";
            timed_out = false;
            time_s = 1.0;
            iterations = 10;
            nodes = None;
            memory = None;
            time_hist = None;
            heap_components = [];
            jobs = 4;
            domains = 2;
          };
        ];
    }
  in
  match Record.of_snapshot ~seq:0 ~host snap with
  | Error e -> Alcotest.failf "of_snapshot failed: %s" e
  | Ok r ->
    Alcotest.(check (option int)) "snapshot cores win" (Some 4)
      r.Record.host.Record.cores;
    let c = List.hd r.Record.cells in
    Alcotest.(check int) "jobs copied" 4 c.Record.jobs;
    Alcotest.(check int) "domains copied" 2 c.Record.domains

let trend_cores_guard_test () =
  let series final_cores =
    List.init 7 (fun i ->
        let time_s, cores =
          if i < 6 then (1.0 +. (0.01 *. float_of_int (i mod 3)), Some 4)
          else (3.0, final_cores)
        in
        record_with_cores ~seq:i
          ~commit:(Printf.sprintf "c%04d" i)
          ~cores
          [ cell ~time_s "bench" "ana" ])
  in
  (* Same core count throughout: the 3x jump on the last record flags. *)
  (match Trend.check_latest (series (Some 4)) with
  | Ok [ Trend.Breach f ] ->
    Alcotest.(check int) "flag carries jobs" 1 f.jobs
  | Ok fs -> Alcotest.failf "expected 1 flag, got %d" (List.length fs)
  | Error e -> Alcotest.fail e);
  (* The jump coincides with a core-count change: the window refuses to
     mix core counts, leaving too little history to flag on. *)
  (match Trend.check_latest (series (Some 8)) with
  | Ok [] -> ()
  | Ok fs ->
    Alcotest.failf "cross-core comparison flagged %d time(s)" (List.length fs)
  | Error e -> Alcotest.fail e);
  (* Unknown cores (pre-v3 records) only match unknown. *)
  match Trend.check_latest (series None) with
  | Ok [] -> ()
  | Ok fs -> Alcotest.failf "unknown-cores flagged %d time(s)" (List.length fs)
  | Error e -> Alcotest.fail e

let bisect_cores_guard_test () =
  (* Bisect over a ledger whose regression is an artifact of moving to
     a smaller machine: with the guard, the differing-cores records are
     incommensurable (treated good), so the "regression" vanishes. *)
  let records =
    List.init 8 (fun i ->
        let time_s, cores =
          if i < 5 then (1.0, Some 4) else (3.0, Some 1)
        in
        record_with_cores ~seq:i
          ~commit:(Printf.sprintf "c%04d" i)
          ~cores
          [ cell ~time_s "bench" "ana" ])
  in
  (* The latest record's cores (Some 1) anchor the comparison; the
     Some 4 records are skipped, leaving too few points to anchor on. *)
  match Bisect.run ~metric:Trend.Time ~benchmark:"bench" ~analysis:"ana" records with
  | Error _ -> ()
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "bisect crossed core counts"

let tests =
  [
    Alcotest.test_case "record JSON round-trip" `Quick record_roundtrip_test;
    Alcotest.test_case "record codec rejects" `Quick record_rejects_test;
    Alcotest.test_case "record from snapshot" `Quick of_snapshot_test;
    Alcotest.test_case "v1 record back-compat" `Quick v1_record_compat_test;
    Alcotest.test_case "ledger append re-stamps seq" `Quick ledger_append_test;
    Alcotest.test_case "ledger load is strict" `Quick ledger_strict_test;
    Alcotest.test_case "committed fixtures load" `Quick fixtures_load_test;
    Alcotest.test_case "window stats" `Quick window_stats_test;
    Alcotest.test_case "clean fixture passes check" `Quick check_clean_test;
    Alcotest.test_case "planted regression flagged" `Quick check_regressed_test;
    Alcotest.test_case "component regression flagged" `Quick
      check_component_test;
    Alcotest.test_case "metric names parse" `Quick metric_of_string_test;
    Alcotest.test_case "new analysis not flagged" `Quick check_new_analysis_test;
    Alcotest.test_case "bisect finds the step" `Quick bisect_finds_step_test;
    Alcotest.test_case "bisect the component metric" `Quick
      bisect_component_test;
    Alcotest.test_case "bisect on clean history" `Quick bisect_clean_test;
    Alcotest.test_case "bisect error cases" `Quick bisect_errors_test;
    Alcotest.test_case "git handoff script" `Quick git_script_test;
    Alcotest.test_case "render is byte-deterministic" `Quick
      render_deterministic_test;
    Alcotest.test_case "jobs-keyed record cells" `Quick jobs_cells_test;
    Alcotest.test_case "of_snapshot carries the core stamp" `Quick
      of_snapshot_cores_test;
    Alcotest.test_case "trend refuses cross-core windows" `Quick
      trend_cores_guard_test;
    Alcotest.test_case "bisect refuses cross-core spans" `Quick
      bisect_cores_guard_test;
    Alcotest.test_case "render structure and markers" `Quick
      render_structure_test;
  ]
