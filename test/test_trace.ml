(** Tests for the trace layer: Chrome-trace JSON schema, span nesting
    balance, determinism of rule firing counts, null-sink transparency,
    ring-buffer drops vs exact aggregates, and gauge emission. *)

module Solver = Pta_solver.Solver
module Trace = Pta_obs.Trace
module Json = Pta_obs.Json
module Driver = Pta_driver.Driver
module Metrics = Pta_clients.Metrics

let tiny_program () =
  Pta_workloads.Workloads.program
    (Option.get (Pta_workloads.Profile.by_name "tiny"))

let solve_traced ?(analysis = "S-2obj+H") program =
  let trace = Trace.create () in
  let config = Solver.Config.make ~trace () in
  match Driver.run ~config program ~analysis with
  | Ok r -> (r.Driver.solver, trace)
  | Error e -> Alcotest.failf "driver error: %a" Driver.pp_error e

(* Every exported event must carry the fields Chrome/Perfetto require:
   "name", a known "ph", a numeric "ts"; "X" events a numeric "dur";
   "B"/"X"/"i"/"C" a "cat". *)
let chrome_schema_test () =
  let _, trace = solve_traced (tiny_program ()) in
  let json = Trace.to_chrome_json trace in
  (* Round-trip through the printer to check it serializes as valid JSON
     too. *)
  let json =
    match Json.of_string (Json.to_string json) with
    | Ok v -> v
    | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
  in
  let events =
    match json with
    | Json.List evs -> evs
    | _ -> Alcotest.fail "trace JSON is not an array"
  in
  Alcotest.(check bool) "nonempty" true (events <> []);
  List.iter
    (fun ev ->
      let get name =
        match Json.member name ev with
        | Some v -> v
        | None -> Alcotest.failf "event lacks %S" name
      in
      (match Json.to_str (get "name") with
      | Some _ -> ()
      | None -> Alcotest.fail "name is not a string");
      (match Json.to_float (get "ts") with
      | Some ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.)
      | None -> Alcotest.fail "ts is not a number");
      match Json.to_str (get "ph") with
      | Some (("B" | "E" | "X" | "i" | "C") as ph) ->
        if ph <> "E" then
          (match Json.to_str (get "cat") with
          | Some _ -> ()
          | None -> Alcotest.failf "%s event lacks a cat" ph);
        if ph = "X" then (
          match Json.to_float (get "dur") with
          | Some dur -> Alcotest.(check bool) "dur >= 0" true (dur >= 0.)
          | None -> Alcotest.fail "X event lacks a numeric dur")
      | Some ph -> Alcotest.failf "unknown ph %S" ph
      | None -> Alcotest.fail "ph is not a string")
    events

(* B and E events must pair up like parentheses: the running depth never
   goes negative and ends at zero.  (No drops on the tiny program, so
   the retained timeline is the whole timeline.) *)
let nesting_balance_test () =
  let _, trace = solve_traced (tiny_program ()) in
  Alcotest.(check int) "no drops" 0 (Trace.dropped trace);
  let events =
    match Trace.to_chrome_json trace with
    | Json.List evs -> evs
    | _ -> Alcotest.fail "trace JSON is not an array"
  in
  let depth = ref 0 in
  List.iter
    (fun ev ->
      match Option.bind (Json.member "ph" ev) Json.to_str with
      | Some "B" -> incr depth
      | Some "E" ->
        decr depth;
        Alcotest.(check bool) "depth never negative" true (!depth >= 0)
      | _ -> ())
    events;
  Alcotest.(check int) "all spans closed" 0 !depth

(* The engines are deterministic, so per-name firing and delta counts of
   two identical runs must be identical (times, of course, differ — so
   re-sort away the profile's by-time order before comparing). *)
let shape stats =
  List.sort compare
    (List.map
       (fun (s : Trace.stat) ->
         (s.Trace.stat_cat, s.Trace.stat_name, s.Trace.events, s.Trace.delta))
       stats)

let solver_determinism_test () =
  let program = tiny_program () in
  let _, t1 = solve_traced program in
  let _, t2 = solve_traced program in
  Alcotest.(check bool)
    "identical (cat, name, events, delta) profiles" true
    (shape (Trace.profile t1) = shape (Trace.profile t2))

let datalog_determinism_test () =
  let program =
    Pta_frontend.Frontend.program_of_string ~file:"<t>"
      {|
      class A { method id(x) { return x; } }
      class Main {
        static method main() {
          var a = new A;
          var b = a.id(a);
        }
      }
      |}
  in
  let run () =
    let trace = Trace.create () in
    let strategy = Pta_context.Strategies.get "1obj" program in
    ignore (Pta_refimpl.Refimpl.run ~trace program strategy);
    trace
  in
  let t1 = run () and t2 = run () in
  let rules t =
    List.filter (fun (c, _, _, _) -> c = "rule") (shape (Trace.profile t))
  in
  Alcotest.(check bool) "some rule spans" true (rules t1 <> []);
  Alcotest.(check bool)
    "identical rule firing counts" true
    (rules t1 = rules t2)

(* Tracing must not change what the solver computes: same metric bundle
   with a live sink, the null sink, and no sink at all. *)
let null_sink_transparent_test () =
  let program = tiny_program () in
  let factory = Option.get (Pta_context.Strategies.by_name "S-2obj+H") in
  let bare = Metrics.compute (Solver.solve program (factory program)) in
  let with_null =
    let config = Solver.Config.make ~trace:Trace.null () in
    Metrics.compute (Solver.solve ~config program (factory program))
  in
  let with_live =
    let config = Solver.Config.make ~trace:(Trace.create ()) () in
    Metrics.compute (Solver.solve ~config program (factory program))
  in
  Alcotest.(check bool) "null sink transparent" true (bare = with_null);
  Alcotest.(check bool) "live sink transparent" true (bare = with_live)

(* Span-scoped allocation accounting: an alloc-enabled sink must
   attribute a span's fresh words to its aggregate and carry them into
   the Chrome-trace args of the closing event. *)
let alloc_accounting_test () =
  let trace = Trace.create ~alloc:true () in
  Alcotest.(check bool) "alloc enabled" true (Trace.alloc_enabled trace);
  let sink = ref [] in
  Trace.span trace ~cat:"t" "hungry" (fun () ->
      sink := List.init 10_000 (fun i -> i));
  Alcotest.(check bool) "sink lives" true (List.length !sink = 10_000);
  (match Trace.profile trace with
  | [ s ] ->
    Alcotest.(check bool)
      "allocation attributed" true
      (Trace.stat_alloc_words s >= 3. *. 10_000.)
  | stats -> Alcotest.failf "expected one aggregate, got %d" (List.length stats));
  let events =
    match Trace.to_chrome_json trace with
    | Json.List evs -> evs
    | _ -> Alcotest.fail "expected a JSON array"
  in
  Alcotest.(check bool)
    "closing event carries alloc args" true
    (List.exists
       (fun ev ->
         match Option.bind (Json.member "args" ev) (Json.member "alloc_minor_w") with
         | Some (Json.Float w) -> w > 0.
         | _ -> false)
       events)

(* The null sink's guarded operations must allocate nothing at all: the
   minor-words cost of a loop of null-sink calls must equal the cost of
   an empty loop measured the same way (the measurement itself boxes a
   constant number of floats, identical in both runs). *)
let null_zero_alloc_test () =
  let minor_cost f =
    let a = Gc.minor_words () in
    f ();
    let b = Gc.minor_words () in
    b -. a
  in
  let n = 10_000 in
  let empty () = for _ = 1 to n do () done in
  let null_ops () =
    for _ = 1 to n do
      Trace.begin_span Trace.null ~cat:"t" "x";
      Trace.end_span Trace.null;
      Trace.instant Trace.null ~cat:"t" "x";
      Trace.counter Trace.null ~cat:"t" "x" 1.0;
      ignore (Trace.alloc_mark Trace.null)
    done
  in
  (* Warm both closures so neither run pays one-time setup. *)
  empty ();
  null_ops ();
  let baseline = minor_cost empty in
  let cost = minor_cost null_ops in
  Alcotest.(check (float 0.)) "null path allocation-free" baseline cost

(* Once the ring hits its limit the oldest events are evicted — but the
   per-name aggregates must keep counting every completed span. *)
let ring_drops_exact_aggregates_test () =
  let trace = Trace.create ~limit:16 () in
  let n = 1000 in
  for _ = 1 to n do
    Trace.span trace ~cat:"t" "tick" (fun () -> ())
  done;
  Alcotest.(check bool) "retained at most limit" true (Trace.n_events trace <= 16);
  Alcotest.(check bool) "dropped something" true (Trace.dropped trace > 0);
  match Trace.profile trace with
  | [ s ] ->
    Alcotest.(check string) "name" "tick" s.Trace.stat_name;
    Alcotest.(check int) "exact event count despite drops" n s.Trace.events
  | stats -> Alcotest.failf "expected one aggregate, got %d" (List.length stats)

(* The driver samples the four Table-1 gauges into the trace at
   fixpoint. *)
let gauges_test () =
  let _, trace = solve_traced (tiny_program ()) in
  let events =
    match Trace.to_chrome_json trace with
    | Json.List evs -> evs
    | _ -> Alcotest.fail "trace JSON is not an array"
  in
  let gauge name =
    List.exists
      (fun ev ->
        Option.bind (Json.member "cat" ev) Json.to_str = Some "gauge"
        && Option.bind (Json.member "ph" ev) Json.to_str = Some "C"
        && Option.bind (Json.member "name" ev) Json.to_str = Some name)
      events
  in
  List.iter
    (fun name -> Alcotest.(check bool) name true (gauge name))
    [ "contexts"; "avg objs per var"; "reachable methods"; "call-graph edges" ];
  (* Edge-kind spans from the native solver must be present too. *)
  let solver_span name =
    List.exists
      (fun ev ->
        Option.bind (Json.member "cat" ev) Json.to_str = Some "solver"
        && Option.bind (Json.member "name" ev) Json.to_str = Some name)
      events
  in
  List.iter
    (fun name -> Alcotest.(check bool) name true (solver_span name))
    [ "move"; "load"; "store"; "vcall"; "scall" ]

let tests =
  [
    Alcotest.test_case "chrome JSON schema" `Quick chrome_schema_test;
    Alcotest.test_case "span nesting balance" `Quick nesting_balance_test;
    Alcotest.test_case "solver profile deterministic" `Quick
      solver_determinism_test;
    Alcotest.test_case "datalog rule counts deterministic" `Quick
      datalog_determinism_test;
    Alcotest.test_case "null sink transparent" `Quick null_sink_transparent_test;
    Alcotest.test_case "span allocation accounting" `Quick
      alloc_accounting_test;
    Alcotest.test_case "null path allocation-free" `Quick null_zero_alloc_test;
    Alcotest.test_case "ring drops, aggregates exact" `Quick
      ring_drops_exact_aggregates_test;
    Alcotest.test_case "fixpoint gauges emitted" `Quick gauges_test;
  ]
