(** Taint pass tests: spec language, native-vs-Datalog differential on
    every strategy preset, precision ordering (hybrids beat their
    unhybrid counterparts on spurious flows), sanitizer cutting and
    provenance chains. *)

module Ir = Pta_ir.Ir
module Ctx = Pta_context.Ctx
module Strategies = Pta_context.Strategies
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Spec = Pta_taint.Spec
module Taint = Pta_taint.Taint
module Taint_ref = Pta_taint.Taint_ref

let elem_str = function
  | Ctx.Star -> "*"
  | Ctx.Heap h -> "H" ^ string_of_int (Ir.Heap_id.to_int h)
  | Ctx.Invo i -> "I" ^ string_of_int (Ir.Invo_id.to_int i)
  | Ctx.Type t -> "T" ^ string_of_int (Ir.Type_id.to_int t)

let ctx_str v = String.concat "," (List.map elem_str (Array.to_list v))

module S = Set.Make (String)

let native_facts taint =
  let tainted = ref S.empty in
  Taint.iter_tainted taint (fun var ctx labels ->
      let ctx = ctx_str (Taint.ctx_value taint ctx) in
      Intset.iter
        (fun l ->
          tainted :=
            S.add (Printf.sprintf "%d|%s|%d" (Ir.Var_id.to_int var) ctx l) !tainted)
        labels);
  let hits = ref S.empty in
  List.iter
    (fun (h : Taint.hit) ->
      let ctx = ctx_str (Taint.ctx_value taint h.h_ctx) in
      Intset.iter
        (fun l ->
          hits :=
            S.add
              (Printf.sprintf "%d|%d|%s|%d"
                 (Ir.Invo_id.to_int h.h_invo)
                 h.h_pos ctx l)
              !hits)
        h.h_labels)
    (Taint.sink_hits taint);
  (!tainted, !hits)

let ref_facts tref =
  let tainted =
    Taint_ref.fold_tainted tref
      (fun var ctx l acc ->
        S.add
          (Printf.sprintf "%d|%s|%d" (Ir.Var_id.to_int var) (ctx_str ctx) l)
          acc)
      S.empty
  in
  let hits =
    Taint_ref.fold_sink_hits tref
      (fun invo pos ctx l acc ->
        S.add
          (Printf.sprintf "%d|%d|%s|%d" (Ir.Invo_id.to_int invo) pos
             (ctx_str ctx) l)
          acc)
      S.empty
  in
  (tainted, hits)

let diff_msg label a b =
  let missing = S.diff b a and extra = S.diff a b in
  Printf.sprintf "%s: native-only=[%s] ref-only=[%s]" label
    (String.concat "; " (List.filteri (fun i _ -> i < 5) (S.elements extra)))
    (String.concat "; " (List.filteri (fun i _ -> i < 5) (S.elements missing)))

let flow_str (f : Taint.flow) =
  Printf.sprintf "%d|%d|%d" f.f_label (Ir.Invo_id.to_int f.f_invo) f.f_pos

let compile_spec program spec_text =
  match Spec.parse spec_text with
  | Error msg -> Alcotest.failf "spec parse error: %s" msg
  | Ok entries -> Spec.compile program entries

let run_both program spec strat_name =
  let factory = Option.get (Strategies.by_name strat_name) in
  let strategy = factory program in
  let solver = Solver.solve program strategy in
  let taint = Taint.analyze solver spec in
  let reference = Pta_refimpl.Refimpl.run program strategy in
  let tref = Taint_ref.analyze program strategy reference spec in
  (taint, tref)

let check_program ~name src spec_text strategies =
  let program = Pta_frontend.Frontend.program_of_string ~file:name src in
  let spec = compile_spec program spec_text in
  List.iter
    (fun strat_name ->
      let taint, tref = run_both program spec strat_name in
      let n_tainted, n_hits = native_facts taint in
      let r_tainted, r_hits = ref_facts tref in
      let ok_label what = Printf.sprintf "%s/%s %s" name strat_name what in
      Alcotest.(check bool)
        (diff_msg (ok_label "tainted") n_tainted r_tainted)
        true (S.equal n_tainted r_tainted);
      Alcotest.(check bool)
        (diff_msg (ok_label "sink hits") n_hits r_hits)
        true (S.equal n_hits r_hits);
      Alcotest.(check (list string))
        (ok_label "flow verdicts")
        (List.map flow_str (Taint.flows taint))
        (List.map flow_str (Taint_ref.flows tref)))
    strategies

let all_strategies = List.map fst Strategies.all

(* ------------------------------------------------------------------ *)
(* Sample programs                                                     *)
(* ------------------------------------------------------------------ *)

(* The canonical conflation shape: one pass-through static method
   called with tainted and clean data from distinct call sites.
   Unhybrid object/type-sensitive analyses conflate the two static
   calls (MergeStatic keeps the caller context), taints [clean2] and
   report the spurious leak(b); hybrids and call-site analyses keep
   them apart. *)
let program_conflation =
  {|
  class Data {}
  class Kit {
    static method pass(x) { return x; }
  }
  class Sink {
    static field cell;
    static method fetch() { var t = new Data; return t; }
    static method leak(x) { Sink::cell = x; }
    static method scrub(x) { Sink::cell = x; return x; }
  }
  class Main {
    static method main() {
      var raw = Sink::fetch();
      var clean = new Data;
      var a = Kit::pass(raw);
      var b = Kit::pass(clean);
      Sink::leak(a);
      Sink::leak(b);
      var s = Sink::scrub(raw);
      Sink::leak(s);
    }
  }
  |}

(* Heap flow through a container, with both boxes allocated at the same
   site (factory): taint must travel store -> (heap, field) -> load. *)
let program_heap =
  {|
  class Box {
    field c;
    method put(x) { this.c = x; return this; }
    method get() { return this.c; }
  }
  class Factory {
    static method mk() { var nb = new Box; return nb; }
  }
  class Sink {
    static field cell;
    static method fetch() { var t = new Factory; return t; }
    static method leak(x) { Sink::cell = x; }
  }
  class Main {
    static method main() {
      var b1 = Factory::mk();
      var b2 = Factory::mk();
      var t = Sink::fetch();
      var u = new Factory;
      b1.put(t);
      b2.put(u);
      var o1 = b1.get();
      var o2 = b2.get();
      Sink::leak(o1);
      Sink::leak(o2);
    }
  }
  |}

(* Param sources, virtual dispatch, this-flow and a field round-trip
   inside the callee. *)
let program_virtual =
  {|
  class Handler {
    field store;
    method handle(req) { this.store = req; var r = this.store; return r; }
  }
  class Loud extends Handler {
    method handle(req) { return req; }
  }
  class App {
    static method process(h, req) { var out = h.handle(req); App::emit(out); }
    static method emit(x) { }
  }
  class Main {
    static method main() {
      var h = new Handler;
      if (*) { h = new Loud; }
      var req = new App;
      App::process(h, req);
    }
  }
  |}

(* Static fields as global cells plus exception control flow (taint
   does not follow throw/catch; both engines agree on that). *)
let program_static_and_throw =
  {|
  class Boom {}
  class Cfg {
    static field hold;
    static method stash(x) { Cfg::hold = x; }
    static method fetch() { var c = new Cfg; return c; }
    static method leak(x) { }
  }
  class Main {
    static method main() {
      var t = Cfg::fetch();
      Cfg::stash(t);
      var got = Cfg::hold;
      try { throw new Boom; } catch (Boom b) { Cfg::leak(got); }
      Cfg::leak(got);
    }
  }
  |}

let default_spec_text = Spec.to_string Spec.default

let spec_virtual =
  {|
  source App.process/2 param 1
  sink App.emit/1 arg 0
  |}

let spec_static =
  {|
  source *.fetch/0 ret
  sink Cfg.leak/1 arg *
  |}

(* ------------------------------------------------------------------ *)
(* Tests                                                               *)
(* ------------------------------------------------------------------ *)

let parse_tests =
  [
    Alcotest.test_case "spec parses and round-trips" `Quick (fun () ->
        let text =
          "# comment\n\
           source *.fetch/* ret\n\
           source App.process/2 param 1\n\
           \n\
           sink *.leak/* arg *\n\
           sink App.emit/1 arg 0   # trailing comment\n\
           sanitizer *.scrub/*\n"
        in
        match Spec.parse text with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok entries ->
          Alcotest.(check int) "five entries" 5 (List.length entries);
          (* Round-trip: to_string o parse is the identity on the
             canonical rendering. *)
          let canon = Spec.to_string entries in
          Alcotest.(check string) "round trip" canon
            (match Spec.parse canon with
            | Ok e -> Spec.to_string e
            | Error e -> Alcotest.failf "re-parse failed: %s" e));
    Alcotest.test_case "spec rejects malformed lines" `Quick (fun () ->
        let bad =
          [
            "source *.f/*";  (* missing position *)
            "source *.f/* param x";  (* non-numeric index *)
            "sink *.f/* arg";  (* missing index *)
            "sink *.f/* arg -1";  (* negative *)
            "sanitize *.f/*";  (* unknown directive *)
            "sanitizer";  (* missing glob *)
          ]
        in
        List.iter
          (fun line ->
            match Spec.parse ("# leading\n" ^ line) with
            | Ok _ -> Alcotest.failf "accepted %S" line
            | Error msg ->
              Alcotest.(check bool)
                (Printf.sprintf "error for %S names line 2 (%s)" line msg)
                true
                (String.length msg >= 7 && String.sub msg 0 7 = "line 2:"))
          bad);
    Alcotest.test_case "labels are dense and deterministic" `Quick (fun () ->
        let program =
          Pta_frontend.Frontend.program_of_string ~file:"conflation"
            program_conflation
        in
        let spec = compile_spec program default_spec_text in
        Alcotest.(check int) "one source" 1 (Spec.n_sources spec);
        let s = List.hd (Spec.sources spec) in
        Alcotest.(check int) "label 0" 0 s.Spec.src_label;
        Alcotest.(check string)
          "name" "Sink.fetch/0 ret"
          (Spec.label_name spec 0);
        (* leak/1 is a sink at position 0; scrub is a sanitizer. *)
        let leak = Option.get (Ir.Program.find_meth program "Sink" "leak" 1) in
        let scrub = Option.get (Ir.Program.find_meth program "Sink" "scrub" 1) in
        Alcotest.(check (list int)) "sink pos" [ 0 ] (Spec.sink_positions spec leak);
        Alcotest.(check bool) "sanitizer" true (Spec.is_sanitizer spec scrub));
  ]

let differential_tests =
  [
    Alcotest.test_case "conflation program, all strategies" `Quick (fun () ->
        check_program ~name:"conflation" program_conflation default_spec_text
          all_strategies);
    Alcotest.test_case "heap program, all strategies" `Quick (fun () ->
        check_program ~name:"heap" program_heap default_spec_text all_strategies);
    Alcotest.test_case "virtual program, all strategies" `Quick (fun () ->
        check_program ~name:"virtual" program_virtual spec_virtual all_strategies);
    Alcotest.test_case "statics and throw program, all strategies" `Quick
      (fun () ->
        check_program ~name:"static-throw" program_static_and_throw spec_static
          all_strategies);
  ]

let flows_of src spec_text strat_name =
  let program = Pta_frontend.Frontend.program_of_string ~file:"precision" src in
  let spec = compile_spec program spec_text in
  let factory = Option.get (Strategies.by_name strat_name) in
  let solver = Solver.solve program (factory program) in
  Taint.n_flows (Taint.analyze solver spec)

let precision_tests =
  [
    Alcotest.test_case "hybrids beat unhybrids on spurious flows" `Quick
      (fun () ->
        (* True flows in program_conflation: exactly one (leak(a)).
           The unhybrid analyses conflate the two Kit::pass call sites
           and add the spurious leak(b); every hybrid of the same base
           stays precise.  The scrubbed leak(s) must never flow. *)
        let flows name = flows_of program_conflation default_spec_text name in
        List.iter
          (fun unhybrid -> Alcotest.(check int) unhybrid 2 (flows unhybrid))
          [ "insens"; "1obj"; "2obj+H"; "2type+H" ];
        List.iter
          (fun precise -> Alcotest.(check int) precise 1 (flows precise))
          [
            "1call"; "U-2obj+H"; "S-2obj+H"; "SA-1obj"; "SB-1obj"; "U-2type+H";
            "S-2type+H"; "CS"; "CS-2obj+H";
          ]);
    Alcotest.test_case "heap conflation separates under call-site heaps" `Quick
      (fun () ->
        (* Both boxes come from the same allocation site inside
           [Factory::mk].  A purely object-sensitive heap context cannot
           tell them apart (the paper's hybrids deliberately keep the
           heap context object-sensitive), but any heap context that
           records the [mk()] call site can. *)
        let flows name = flows_of program_heap default_spec_text name in
        Alcotest.(check int) "insens conflates the boxes" 2 (flows "insens");
        Alcotest.(check int) "2obj+H conflates (obj-sens heap ctx)" 2
          (flows "2obj+H");
        Alcotest.(check int) "1call+H separates" 1 (flows "1call+H");
        Alcotest.(check int) "2call+H separates" 1 (flows "2call+H");
        Alcotest.(check int) "A-2obj+H separates" 1 (flows "A-2obj+H"));
  ]

let misc_tests =
  [
    Alcotest.test_case "sanitizer cut stops the flow" `Quick (fun () ->
        (* Remove the sanitizer directive: the scrub pass-through now
           leaks, adding one flow per strategy. *)
        let with_sanitizer = flows_of program_conflation default_spec_text in
        let no_sanitizer =
          flows_of program_conflation
            "source *.fetch/* ret\nsink *.leak/* arg *\n"
        in
        Alcotest.(check int) "S-2obj+H with" 1 (with_sanitizer "S-2obj+H");
        Alcotest.(check int) "S-2obj+H without" 2 (no_sanitizer "S-2obj+H");
        Alcotest.(check int) "insens with" 2 (with_sanitizer "insens");
        Alcotest.(check int) "insens without" 3 (no_sanitizer "insens"));
    Alcotest.test_case "provenance chain walks back to the source" `Quick
      (fun () ->
        let program =
          Pta_frontend.Frontend.program_of_string ~file:"heap" program_heap
        in
        let spec = compile_spec program default_spec_text in
        let factory = Option.get (Strategies.by_name "2call+H") in
        let solver = Solver.solve program (factory program) in
        let taint = Taint.analyze solver spec in
        match Taint.flows taint with
        | [ flow ] ->
          let chain = Taint.explain_flow taint flow in
          Alcotest.(check bool) "nonempty" true (List.length chain >= 3);
          let first = List.hd chain in
          Alcotest.(check bool)
            (Printf.sprintf "starts at the source (%s)" first)
            true
            (String.length first >= 6 && String.sub first 0 6 = "source");
          let last = List.nth chain (List.length chain - 1) in
          Alcotest.(check bool)
            (Printf.sprintf "ends at the sink (%s)" last)
            true
            (String.length last >= 7 && String.sub last 0 7 = "reaches")
        | fs -> Alcotest.failf "expected one flow, got %d" (List.length fs));
    Alcotest.test_case "aborted solver state is refused" `Quick (fun () ->
        let module Budget = Pta_obs.Budget in
        let module Observer = Pta_obs.Observer in
        let program =
          Pta_frontend.Frontend.program_of_string ~file:"heap" program_heap
        in
        let spec = compile_spec program default_spec_text in
        let factory = Option.get (Strategies.by_name "insens") in
        let budget = Budget.unlimited () in
        let iterations = ref 0 in
        let observer =
          Observer.make
            ~on_iteration:(fun () ->
              incr iterations;
              if !iterations = 2 then Budget.cancel budget)
            ()
        in
        let config = { Solver.Config.default with budget; observer } in
        match Solver.solve_outcome ~config program (factory program) with
        | Solver.Complete _ -> Alcotest.fail "expected an aborted solve"
        | Solver.Aborted (partial, _abort) -> (
          match Taint.analyze partial spec with
          | _ -> Alcotest.fail "expected Invalid_argument"
          | exception Invalid_argument _ -> ()));
  ]

(* ------------------------------------------------------------------ *)
(* Dynamic-vs-static soundness: every source->sink flow the concrete   *)
(* interpreter observes must be in the static flow set.                *)
(* ------------------------------------------------------------------ *)

let check_taint_soundness ~name src spec_text strategies =
  let program = Pta_frontend.Frontend.program_of_string ~file:name src in
  let spec = compile_spec program spec_text in
  let observed =
    List.concat_map
      (fun seed ->
        Pta_interp.Interp.observed_taint_hits
          (Pta_interp.Interp.run ~taint:spec ~seed program))
      [ 1L; 7L; 42L; 1234L ]
  in
  let observed = List.sort_uniq compare observed in
  List.iter
    (fun strat_name ->
      let factory = Option.get (Strategies.by_name strat_name) in
      let solver = Solver.solve program (factory program) in
      let static =
        List.map
          (fun (f : Taint.flow) -> (f.f_label, f.f_invo, f.f_pos))
          (Taint.flows (Taint.analyze solver spec))
      in
      List.iter
        (fun ((label, invo, pos) as hit) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s observed flow %d@%d.%d is derived" name
               strat_name label (Ir.Invo_id.to_int invo) pos)
            true
            (List.mem hit static))
        observed)
    strategies

let soundness_tests =
  [
    Alcotest.test_case "dynamic hits within static flows, all programs" `Quick
      (fun () ->
        let strategies = [ "insens"; "1call"; "2obj+H"; "S-2obj+H"; "CS" ] in
        check_taint_soundness ~name:"conflation" program_conflation
          default_spec_text strategies;
        check_taint_soundness ~name:"heap" program_heap default_spec_text
          strategies;
        check_taint_soundness ~name:"virtual" program_virtual spec_virtual
          strategies;
        check_taint_soundness ~name:"static-throw" program_static_and_throw
          spec_static strategies);
    Alcotest.test_case "interpreter actually observes the true flow" `Quick
      (fun () ->
        let program =
          Pta_frontend.Frontend.program_of_string ~file:"conflation"
            program_conflation
        in
        let spec = compile_spec program default_spec_text in
        let hits =
          Pta_interp.Interp.observed_taint_hits
            (Pta_interp.Interp.run ~taint:spec ~seed:1L program)
        in
        (* Straight-line main: exactly the leak(a) hit — the clean and
           sanitized calls never fire dynamically either. *)
        Alcotest.(check int) "one dynamic hit" 1 (List.length hits);
        let label, _invo, pos = List.hd hits in
        Alcotest.(check int) "label 0" 0 label;
        Alcotest.(check int) "arg 0" 0 pos);
    Alcotest.test_case "workload taint units match ground truth" `Quick
      (fun () ->
        let profile = Option.get (Pta_workloads.Profile.by_name "luindex") in
        let truth = Pta_workloads.Gen.taint_ground_truth profile in
        Alcotest.(check int) "luindex has taint units" 3 truth;
        let program = Pta_workloads.Workloads.program profile in
        let spec = Spec.compile program Spec.default in
        let flows strat =
          let factory = Option.get (Strategies.by_name strat) in
          Taint.n_flows (Taint.analyze (Solver.solve program (factory program)) spec)
        in
        (* Hybrids hit the ground truth; their unhybrid counterpart
           reports one spurious flow per unit — the Table-1 gap. *)
        Alcotest.(check int) "S-2obj+H exact" truth (flows "S-2obj+H");
        Alcotest.(check int) "2obj+H spurious" (2 * truth) (flows "2obj+H");
        (* tiny keeps the knob off: its pinned metrics cannot shift. *)
        let tiny = Option.get (Pta_workloads.Profile.by_name "tiny") in
        Alcotest.(check int) "tiny has no taint units" 0
          (Pta_workloads.Gen.taint_ground_truth tiny));
  ]

let tests =
  parse_tests @ differential_tests @ precision_tests @ misc_tests
  @ soundness_tests
