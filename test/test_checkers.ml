(** Tests for the diagnostics subsystem: source spans through lowering,
    the four checkers, the cast-count parity with the casts client, and
    the SARIF export. *)

module Ir = Pta_ir.Ir
module Srcloc = Pta_ir.Srcloc
module Solver = Pta_solver.Solver
module Casts = Pta_clients.Casts
module Diagnostic = Pta_checkers.Diagnostic
module Results = Pta_checkers.Results
module Checkers = Pta_checkers.Checkers
module Sarif = Pta_checkers.Sarif
module Json = Pta_obs.Json

let results ?strategy src = Results.of_solver (Helpers.run ?strategy src)

let by_code code diags =
  List.filter (fun (d : Diagnostic.t) -> d.code = code) diags

let pos_pair = function
  | None -> (0, 0)
  | Some (sp : Srcloc.span) -> (sp.left.line, sp.left.col)

let end_pair = function
  | None -> (0, 0)
  | Some (sp : Srcloc.span) -> (sp.right.line, sp.right.col)

(* Line/column layout of this source is load-bearing: the span tests
   below assert exact positions. *)
let demo_src =
  "class A { }\n\
   class B extends A { }\n\
   class Main {\n\
  \  static method main() {\n\
  \    var a = new A;\n\
  \    var b = (B) a;\n\
  \    var dead = new Main;\n\
  \    dead.helper();\n\
  \  }\n\
  \  method helper() { }\n\
  \  method unused() { }\n\
   }\n"

let span_tests =
  [
    Alcotest.test_case "instr span tables align with instr_list" `Quick
      (fun () ->
        let p =
          Helpers.program
            "class T { field f; method m(x) { var v = new T; try { v.f = x; \
             if (*) { throw v; } } catch (T t) { var w = t.f; } while (*) { \
             v = (T) x; } return v; } static method main() { var t = new T; \
             t.m(t); } }"
        in
        Ir.Program.iter_meths p (fun meth mi ->
            let n = List.length (Ir.instr_list mi.Ir.body) in
            let spans = Ir.Program.instr_spans p meth in
            Alcotest.(check int)
              (Ir.Program.meth_qualified_name p meth)
              n (Array.length spans);
            Array.iter
              (fun sp ->
                Alcotest.(check bool) "span is real" false
                  (Srcloc.is_dummy_span sp))
              spans));
    Alcotest.test_case "method/heap/invo spans recorded" `Quick (fun () ->
        let p = Helpers.program demo_src in
        let main = Option.get (Ir.Program.find_meth p "Main" "main" 0) in
        Alcotest.(check (pair int int))
          "main header" (4, 3)
          (pos_pair (Ir.Program.meth_span p main));
        let heap_spans = ref [] in
        Ir.Program.iter_heaps p (fun h _ ->
            heap_spans := pos_pair (Ir.Program.heap_span p h) :: !heap_spans);
        Alcotest.(check bool)
          "new A span present" true
          (List.mem (5, 13) !heap_spans);
        let invo_spans = ref [] in
        Ir.Program.iter_invos p (fun i _ ->
            invo_spans := pos_pair (Ir.Program.invo_span p i) :: !invo_spans);
        Alcotest.(check bool)
          "call span present" true
          (List.mem (8, 5) !invo_spans));
    Alcotest.test_case "synthetic programs have no spans" `Quick (fun () ->
        let b = Ir.Builder.create () in
        let obj =
          Ir.Builder.add_type b ~name:"Object" ~kind:Ir.Class ~superclass:None
            ~interfaces:[]
        in
        let m =
          Ir.Builder.add_meth b ~owner:obj ~name:"main" ~arity:0 ~static:true
        in
        Ir.Builder.set_body b m (Ir.Seq []);
        Ir.Builder.add_entry b m;
        let p = Ir.Builder.freeze b in
        Alcotest.(check bool)
          "meth span is None" true
          (Ir.Program.meth_span p m = None);
        Alcotest.(check int)
          "no instr spans" 0
          (Array.length (Ir.Program.instr_spans p m)));
  ]

let checker_tests =
  [
    Alcotest.test_case "may-fail-cast carries exact spans" `Quick (fun () ->
        let diags = Checkers.run (results demo_src) in
        match by_code "may-fail-cast" diags with
        | [ d ] ->
          Alcotest.(check string)
            "severity" "error"
            (Diagnostic.severity_to_string d.severity);
          Alcotest.(check (pair int int)) "start" (6, 13) (pos_pair d.span);
          Alcotest.(check (pair int int)) "end" (6, 18) (end_pair d.span);
          Alcotest.(check string)
            "file" "<test>"
            (match d.span with Some sp -> sp.left.file | None -> "?");
          (match d.witnesses with
          | [ w ] ->
            Alcotest.(check (pair int int))
              "witness at the allocation" (5, 13) (pos_pair w.w_span);
            Alcotest.(check bool)
              "witness has provenance detail" true (w.w_detail <> [])
          | ws -> Alcotest.failf "expected one witness, got %d" (List.length ws))
        | ds -> Alcotest.failf "expected one may-fail-cast, got %d" (List.length ds));
    Alcotest.test_case "dead and monomorphic reported" `Quick (fun () ->
        let diags = Checkers.run (results demo_src) in
        (match by_code "dead-method" diags with
        | [ d ] ->
          Alcotest.(check (pair int int)) "unused header" (11, 3) (pos_pair d.span);
          Alcotest.(check bool)
            "mentions the method" true
            (String.length d.message > 0
            && String.equal d.message
                 "method Main.unused/0 is unreachable from every entry point")
        | ds -> Alcotest.failf "expected one dead-method, got %d" (List.length ds));
        match by_code "monomorphic-call-site" diags with
        | [ d ] ->
          Alcotest.(check (pair int int)) "call site" (8, 5) (pos_pair d.span)
        | ds ->
          Alcotest.failf "expected one monomorphic-call-site, got %d"
            (List.length ds));
    Alcotest.test_case "null-dereference on never-assigned base" `Quick
      (fun () ->
        let src =
          "class A { field f; method m() { } } class Main { static method \
           main() { var x; x.f = new A; x.m(); var y = x.f; } }"
        in
        let diags = by_code "null-dereference" (Checkers.run (results src)) in
        Alcotest.(check int) "store + call + load" 3 (List.length diags));
    Alcotest.test_case "polymorphic sites are not monomorphic" `Quick (fun () ->
        let src =
          "class A { method m() { } } class B extends A { method m() { } } \
           class Main { static method main() { var x; if (*) { x = new A; } \
           x = new B; x.m(); } }"
        in
        let diags = Checkers.run (results src) in
        Alcotest.(check int)
          "no monomorphic note for a 2-target call" 0
          (List.length (by_code "monomorphic-call-site" diags)));
    Alcotest.test_case "checker selection and unknown names" `Quick (fun () ->
        let r = results demo_src in
        let only = Checkers.run ~only:[ "dead-method" ] r in
        Alcotest.(check bool)
          "only dead-method" true
          (List.for_all (fun (d : Diagnostic.t) -> d.code = "dead-method") only);
        Alcotest.(check bool)
          "unknown checker rejected with suggestions" true
          (match Checkers.run ~only:[ "dead-methods" ] r with
          | _ -> false
          | exception Checkers.Unknown_checker { code; suggestions; available }
            ->
            code = "dead-methods"
            && List.mem "dead-method" suggestions
            && List.length available = List.length Checkers.all));
    Alcotest.test_case "diagnostics are sorted and stable" `Quick (fun () ->
        let diags = Checkers.run (results demo_src) in
        Alcotest.(check bool)
          "sorted by Diagnostic.compare" true
          (List.sort Diagnostic.compare diags = diags));
  ]

(* The may-fail-cast checker must agree with the casts client on every
   strategy: same sites, same verdicts. *)
let parity_src =
  {|
  class Animal { }
  class Dog extends Animal { }
  class Cat extends Animal { }
  class BoxP { field held;
    method put(x) { this.held = x; return this; }
    method get() { return this.held; }
  }
  class Main {
    static method main() {
      var b1 = new BoxP;
      var b2 = new BoxP;
      b1.put(new Dog);
      b2.put(new Cat);
      var d = (Dog) b1.get();
      var c = (Cat) b2.get();
      var a = (Animal) b1.get();
    }
  }
  |}

let parity_tests =
  [
    Alcotest.test_case "cast counts match the casts client" `Quick (fun () ->
        List.iter
          (fun (strategy, _) ->
            let solver = Helpers.run ~strategy parity_src in
            let sites = Casts.analyze solver in
            let diags =
              Checkers.may_fail_cast (Results.of_solver solver)
            in
            Alcotest.(check int)
              (Printf.sprintf "under %s" strategy)
              (Casts.may_fail_count sites)
              (List.length diags))
          Pta_context.Strategies.all);
  ]

let sarif_tests =
  [
    Alcotest.test_case "SARIF parses and has the right shape" `Quick (fun () ->
        let diags = Checkers.run (results demo_src) in
        let doc = Sarif.to_string ~tool_version:"1.0.0" diags in
        let json =
          match Json.of_string doc with
          | Ok j -> j
          | Error e -> Alcotest.failf "SARIF does not parse: %s" e
        in
        Alcotest.(check (option string))
          "version" (Some "2.1.0")
          (Option.bind (Json.member "version" json) Json.to_str);
        let run =
          match Option.bind (Json.member "runs" json) Json.to_list with
          | Some [ r ] -> r
          | _ -> Alcotest.fail "expected exactly one run"
        in
        let rules =
          Option.bind (Json.member "tool" run) (Json.member "driver")
          |> Fun.flip Option.bind (Json.member "rules")
          |> Fun.flip Option.bind Json.to_list
          |> Option.get
        in
        let rule_ids =
          List.filter_map
            (fun r -> Option.bind (Json.member "id" r) Json.to_str)
            rules
        in
        Alcotest.(check (list string))
          "one rule per checker"
          (List.map (fun (i : Checkers.info) -> i.code) Checkers.all)
          rule_ids;
        let sarif_results =
          Option.bind (Json.member "results" run) Json.to_list |> Option.get
        in
        Alcotest.(check int)
          "one result per diagnostic" (List.length diags)
          (List.length sarif_results);
        (* Every result's ruleId is a declared rule. *)
        List.iter
          (fun r ->
            let rule_id =
              Option.bind (Json.member "ruleId" r) Json.to_str |> Option.get
            in
            Alcotest.(check bool)
              ("declared rule " ^ rule_id)
              true
              (List.mem rule_id rule_ids))
          sarif_results);
    Alcotest.test_case "SARIF regions are 1-based spans" `Quick (fun () ->
        let diags =
          by_code "may-fail-cast" (Checkers.run (results demo_src))
        in
        let doc = Sarif.to_string ~tool_version:"1.0.0" diags in
        let json = Result.get_ok (Json.of_string doc) in
        let result =
          Option.bind (Json.member "runs" json) Json.to_list |> Option.get
          |> List.hd |> Json.member "results"
          |> Fun.flip Option.bind Json.to_list
          |> Option.get |> List.hd
        in
        let region =
          Json.member "locations" result
          |> Fun.flip Option.bind Json.to_list
          |> Option.get |> List.hd
          |> Json.member "physicalLocation"
          |> Fun.flip Option.bind (Json.member "region")
          |> Option.get
        in
        let geti k = Option.bind (Json.member k region) Json.to_int in
        Alcotest.(check (option int)) "startLine" (Some 6) (geti "startLine");
        Alcotest.(check (option int)) "startColumn" (Some 13) (geti "startColumn");
        Alcotest.(check (option int)) "endLine" (Some 6) (geti "endLine");
        Alcotest.(check (option int)) "endColumn" (Some 18) (geti "endColumn"));
    Alcotest.test_case "SARIF is byte-deterministic across runs" `Quick
      (fun () ->
        let doc () =
          Sarif.to_string ~tool_version:"1.0.0"
            (Checkers.run (results demo_src))
        in
        Alcotest.(check string) "identical documents" (doc ()) (doc ()));
  ]

(* ------------------------------------------------------------------ *)
(* The taint checkers                                                  *)
(* ------------------------------------------------------------------ *)

module Spec = Pta_taint.Spec
module Taint = Pta_taint.Taint

let taint_src =
  {|
  class Data {}
  class Kit { static method pass(x) { return x; } }
  class Sink {
    static field cell;
    static method fetch() { var t = new Data; return t; }
    static method leak(x) { Sink::cell = x; }
    static method scrub(x) { Sink::cell = x; return x; }
  }
  class Main {
    static method main() {
      var raw = Sink::fetch();
      var clean = new Data;
      var a = Kit::pass(raw);
      var b = Kit::pass(clean);
      Sink::leak(a);
      Sink::leak(b);
      Sink::scrub(raw);
      Sink::leak(raw);
    }
  }
  |}

let taint_results ~strategy src =
  let solver = Helpers.run ~strategy src in
  let spec = Spec.compile (Solver.program solver) Spec.default in
  let taint = Taint.analyze solver spec in
  (solver, Results.of_solver ~taint:(Taint.summary taint) solver)

let taint_checker_tests =
  [
    Alcotest.test_case "tainted-sink-argument reports each flow" `Quick
      (fun () ->
        (* Three true flows: leak(a), leak(raw) — and under a conflating
           strategy the spurious leak(b) as well. *)
        let _, precise = taint_results ~strategy:"S-2obj+H" taint_src in
        let diags = by_code "tainted-sink-argument" (Checkers.run precise) in
        Alcotest.(check int) "precise: two sink calls flagged" 2
          (List.length diags);
        let _, conflated = taint_results ~strategy:"2obj+H" taint_src in
        let diags' =
          by_code "tainted-sink-argument" (Checkers.run conflated)
        in
        Alcotest.(check int) "conflated: spurious third flow" 3
          (List.length diags');
        List.iter
          (fun (d : Diagnostic.t) ->
            Alcotest.(check bool) "has a span" true (d.span <> None);
            match d.witnesses with
            | [ w ] ->
              Alcotest.(check bool)
                "witness names the source" true
                (w.w_message = "source Sink.fetch/0 ret, declared here");
              Alcotest.(check bool)
                "witness points at the source method" true (w.w_span <> None);
              Alcotest.(check bool)
                "native witness carries the chain" true
                (List.length w.w_detail >= 2)
            | ws -> Alcotest.failf "expected one witness, got %d"
                      (List.length ws))
          diags);
    Alcotest.test_case "sanitizer-bypassed on a discarded result" `Quick
      (fun () ->
        let _, r = taint_results ~strategy:"S-2obj+H" taint_src in
        match by_code "sanitizer-bypassed" (Checkers.run r) with
        | [ d ] ->
          Alcotest.(check Alcotest.string)
            "message"
            "result of sanitizer Sink.scrub/1 is discarded; raw stays tainted"
            d.message;
          Alcotest.(check int) "sanitizer witness" 1 (List.length d.witnesses)
        | ds -> Alcotest.failf "expected one bypass warning, got %d"
                  (List.length ds));
    Alcotest.test_case "taint checkers are silent without a spec" `Quick
      (fun () ->
        let diags = Checkers.run (results taint_src) in
        Alcotest.(check int) "no sink diags" 0
          (List.length (by_code "tainted-sink-argument" diags));
        Alcotest.(check int) "no bypass diags" 0
          (List.length (by_code "sanitizer-bypassed" diags)));
    Alcotest.test_case "taint checker verdicts agree across engines" `Quick
      (fun () ->
        let program = Helpers.program taint_src in
        let spec = Spec.compile program Spec.default in
        let key (d : Diagnostic.t) =
          ( d.code,
            d.message,
            pos_pair d.span,
            List.map
              (fun (w : Diagnostic.witness) -> (w.w_message, pos_pair w.w_span))
              d.witnesses )
        in
        List.iter
          (fun strat ->
            let factory =
              Option.get (Pta_context.Strategies.by_name strat)
            in
            let strategy = factory program in
            let solver = Solver.solve program strategy in
            let native =
              Results.of_solver
                ~taint:(Taint.summary (Taint.analyze solver spec))
                solver
            in
            let refimpl = Pta_refimpl.Refimpl.run program strategy in
            let reference =
              Results.of_refimpl
                ~taint:
                  (Pta_taint.Taint_ref.summary
                     (Pta_taint.Taint_ref.analyze program strategy refimpl spec))
                program refimpl
            in
            let taint_only =
              [ "tainted-sink-argument"; "sanitizer-bypassed" ]
            in
            Alcotest.(check bool)
              (strat ^ ": same verdicts either engine")
              true
              (List.map key (Checkers.run ~only:taint_only native)
              = List.map key (Checkers.run ~only:taint_only reference)))
          [ "insens"; "2obj+H"; "S-2obj+H"; "CS" ]);
    Alcotest.test_case "taint SARIF is byte-deterministic" `Quick (fun () ->
        let doc () =
          let _, r = taint_results ~strategy:"S-2obj+H" taint_src in
          Sarif.to_string ~tool_version:"1.0.0" (Checkers.run r)
        in
        let d = doc () in
        Alcotest.(check string) "identical documents" d (doc ());
        let json = Result.get_ok (Json.of_string d) in
        let rule_ids =
          Option.bind (Json.member "runs" json) Json.to_list |> Option.get
          |> List.hd
          |> Json.member "results"
          |> Fun.flip Option.bind Json.to_list
          |> Option.get
          |> List.filter_map (fun r ->
                 Option.bind (Json.member "ruleId" r) Json.to_str)
        in
        Alcotest.(check bool)
          "taint results exported" true
          (List.mem "tainted-sink-argument" rule_ids
          && List.mem "sanitizer-bypassed" rule_ids));
  ]

let tests =
  span_tests @ checker_tests @ parity_tests @ sarif_tests @ taint_checker_tests
