(** Field-sensitive vs field-based: the field-based mode must be a sound
    over-approximation of the field-sensitive result, and strictly less
    precise where distinct objects' fields matter. *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset

let src =
  {|
  class Box { field slot; }
  class A {} class B {}
  class Main {
    static method main() {
      var b1 = new Box;
      var b2 = new Box;
      var p1 = new Pair;
      b1.slot = new A;
      b2.slot = new B;
      var x1 = b1.slot;
      var x2 = b2.slot;
      p1.other = new A;
      var y = p1.other;
    }
  }
  class Pair { field other; }
  |}

let run ~field_based =
  let program = Pta_frontend.Frontend.program_of_string ~file:"<t>" src in
  Solver.solve ~config:(Solver.Config.make ~field_based ()) program (Pta_context.Strategies.get "insens" program)

let types_of solver var_name =
  let program = Solver.program solver in
  let found = ref None in
  Ir.Program.iter_vars program (fun v info ->
      if info.Ir.var_name = var_name then found := Some v);
  Intset.fold
    (fun h acc ->
      Ir.Program.type_name program
        (Ir.Program.heap_info program (Ir.Heap_id.of_int h)).Ir.heap_type
      :: acc)
    (Solver.ci_var_points_to solver (Option.get !found))
    []
  |> List.sort compare

let sensitivity_test () =
  let sensitive = run ~field_based:false in
  (* Field-sensitive: distinct boxes keep their slots apart. *)
  Alcotest.(check (list string)) "x1 precise" [ "A" ] (types_of sensitive "x1");
  Alcotest.(check (list string)) "x2 precise" [ "B" ] (types_of sensitive "x2");
  (* Field-based: one global cell per field name conflates the boxes —
     but not across *different* fields. *)
  let based = run ~field_based:true in
  Alcotest.(check (list string)) "x1 conflated" [ "A"; "B" ] (types_of based "x1");
  (* Distinct field names keep distinct cells even in field-based mode. *)
  Alcotest.(check (list string)) "other field isolated" [ "A" ] (types_of based "y")

let subsumption_test () =
  let sensitive = run ~field_based:false in
  let based = run ~field_based:true in
  let program = Solver.program sensitive in
  Ir.Program.iter_vars program (fun v _ ->
      if
        not
          (Intset.subset
             (Solver.ci_var_points_to sensitive v)
             (Solver.ci_var_points_to based v))
      then
        Alcotest.failf "field-based must over-approximate for %s"
          (Ir.Program.var_qualified_name program v))

let tests =
  [
    Alcotest.test_case "field-based conflates per field name" `Quick
      sensitivity_test;
    Alcotest.test_case "field-based over-approximates" `Quick subsumption_test;
  ]
