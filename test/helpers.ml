(** Shared helpers for the test suites. *)

module Ir = Pta_ir.Ir

let program src = Pta_frontend.Frontend.program_of_string ~file:"<test>" src

let contains_substring s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let run ?(strategy = "1obj") src =
  let p = program src in
  let factory =
    match Pta_context.Strategies.by_name strategy with
    | Some f -> f
    | None -> Alcotest.failf "unknown strategy %s" strategy
  in
  Pta_solver.Solver.solve p (factory p)

(* Names of allocation sites ("<Class>/<label>") a variable may point to,
   context-insensitively, sorted. *)
let points_to_names solver cls meth arity var_name =
  let p = Pta_solver.Solver.program solver in
  let m =
    match Ir.Program.find_meth p cls meth arity with
    | Some m -> m
    | None -> Alcotest.failf "no method %s.%s/%d" cls meth arity
  in
  let var =
    let found = ref None in
    Ir.Program.iter_vars p (fun v info ->
        if Ir.Meth_id.equal info.Ir.var_owner m && String.equal info.Ir.var_name var_name
        then found := Some v);
    match !found with
    | Some v -> v
    | None -> Alcotest.failf "no variable %s in %s.%s" var_name cls meth
  in
  Pta_solver.Intset.fold
    (fun heap acc ->
      let hi = Ir.Program.heap_info p (Ir.Heap_id.of_int heap) in
      let owner = Ir.Program.meth_info p hi.Ir.heap_owner in
      Printf.sprintf "%s.%s:%s"
        (Ir.Program.type_name p owner.Ir.meth_owner)
        owner.Ir.meth_name
        (Ir.Program.type_name p hi.Ir.heap_type)
      :: acc)
    (Pta_solver.Solver.ci_var_points_to solver var)
    []
  |> List.sort_uniq compare

let check_points_to ?strategy src cls meth arity var expected =
  let solver = run ?strategy src in
  Alcotest.(check (list string))
    (Printf.sprintf "%s.%s:%s" cls meth var)
    (List.sort_uniq compare expected)
    (points_to_names solver cls meth arity var)
