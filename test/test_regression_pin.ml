(** Regression pins: exact metric values for the deterministic [tiny]
    workload under key analyses.  These catch *unintended* changes to the
    frontend, solver, or workload generator — if you change any of them
    deliberately, re-generate the pins and re-validate the benchmark
    shape assertions (see HACKING.md). *)

module Metrics = Pta_clients.Metrics

let pinned =
  (* (analysis, (cg edges, reachable meths, poly v-calls, may-fail casts,
     total casts, sensitive vpt)) *)
  [
    ("insens", (159, 59, 4, 7, 25, 674));
    ("1call", (159, 59, 4, 7, 25, 2650));
    ("1obj", (157, 59, 3, 6, 25, 861));
    ("SB-1obj", (157, 59, 3, 6, 25, 869));
    ("2obj+H", (157, 59, 3, 6, 25, 1073));
    ("S-2obj+H", (157, 59, 3, 6, 25, 1081));
    ("2type+H", (157, 59, 3, 6, 25, 897));
    ("U-2obj+H", (157, 59, 3, 6, 25, 2123));
  ]

let tests =
  [
    Alcotest.test_case "tiny workload metrics are pinned" `Quick (fun () ->
        let program =
          Pta_workloads.Workloads.program
            (Option.get (Pta_workloads.Profile.by_name "tiny"))
        in
        List.iter
          (fun (name, expected) ->
            let factory = Option.get (Pta_context.Strategies.by_name name) in
            let m =
              Metrics.compute (Pta_solver.Solver.solve program (factory program))
            in
            let actual =
              ( m.Metrics.call_graph_edges,
                m.Metrics.reachable_methods,
                m.Metrics.poly_vcalls,
                m.Metrics.may_fail_casts,
                m.Metrics.total_casts,
                m.Metrics.sensitive_vpt )
            in
            if actual <> expected then
              let p (a, b, c, d, e, f) =
                Printf.sprintf "(%d, %d, %d, %d, %d, %d)" a b c d e f
              in
              Alcotest.failf "%s drifted: pinned %s, got %s" name (p expected)
                (p actual))
          pinned);
  ]
