(** Precision-relation properties.

    The paper proves some analyses at-least-as-precise as others by
    construction: every uniform hybrid refines its base, and SB-1obj
    refines 1obj ("the context is always a superset").  We check the
    observable consequence on whole workloads: the context-insensitive
    projection of the refined analysis's var-points-to is a subset of the
    base's, and the may-fail-cast/poly-v-call counts never increase.
    Everything is also bounded above by the context-insensitive
    analysis. *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Metrics = Pta_clients.Metrics

let run program name =
  let factory = Option.get (Pta_context.Strategies.by_name name) in
  Solver.solve program (factory program)

let check_refines program ~fine ~coarse =
  let sf = run program fine and sc = run program coarse in
  (* Projection subset, per variable. *)
  Ir.Program.iter_vars program (fun var _ ->
      let pf = Solver.ci_var_points_to sf var in
      let pc = Solver.ci_var_points_to sc var in
      if not (Intset.subset pf pc) then
        Alcotest.failf "%s should refine %s but %s has extra objects for %s" fine
          coarse fine
          (Ir.Program.var_qualified_name program var));
  (* Client metrics never get worse. *)
  let mf = Metrics.compute sf and mc = Metrics.compute sc in
  if mf.Metrics.may_fail_casts > mc.Metrics.may_fail_casts then
    Alcotest.failf "%s has more may-fail casts than %s" fine coarse;
  if mf.Metrics.call_graph_edges > mc.Metrics.call_graph_edges then
    Alcotest.failf "%s has more call-graph edges than %s" fine coarse

(* Pairs with a by-construction refinement guarantee (Section 3.1/3.2),
   plus the everything-refines-insens sanity bound. *)
let guaranteed_pairs =
  [
    ("U-1obj", "1obj");
    ("SB-1obj", "1obj");
    ("U-2obj+H", "2obj+H");
    ("U-2type+H", "2type+H");
    ("1call", "insens");
    ("1obj", "insens");
    ("2obj+H", "insens");
    ("2type+H", "insens");
    ("S-2obj+H", "insens");
    ("SA-1obj", "insens");
  ]

let workloads = [ "tiny"; "luindex" ]

let tests =
  List.concat_map
    (fun wname ->
      List.map
        (fun (fine, coarse) ->
          Alcotest.test_case
            (Printf.sprintf "%s: %s refines %s" wname fine coarse)
            `Quick
            (fun () ->
              let program =
                Pta_workloads.Workloads.program
                  (Option.get (Pta_workloads.Profile.by_name wname))
              in
              check_refines program ~fine ~coarse))
        guaranteed_pairs)
    workloads
  @ [
      Alcotest.test_case "2obj+H strictly beats 1obj somewhere" `Quick (fun () ->
          (* Not a theorem for all programs, but must hold on a workload
             with containers — a regression guard for the benchmark's
             qualitative shape. *)
          let program =
            Pta_workloads.Workloads.program
              (Option.get (Pta_workloads.Profile.by_name "luindex"))
          in
          let m2 = Metrics.compute (run program "2obj+H") in
          let m1 = Metrics.compute (run program "1obj") in
          Alcotest.(check bool) "fewer may-fail casts" true
            (m2.Metrics.may_fail_casts < m1.Metrics.may_fail_casts));
      Alcotest.test_case "selective hybrids repair static-call precision" `Quick
        (fun () ->
          let program =
            Pta_workloads.Workloads.program
              (Option.get (Pta_workloads.Profile.by_name "luindex"))
          in
          let base = Metrics.compute (run program "2obj+H") in
          let sel = Metrics.compute (run program "S-2obj+H") in
          Alcotest.(check bool) "S-2obj+H at least as precise on casts" true
            (sel.Metrics.may_fail_casts <= base.Metrics.may_fail_casts);
          Alcotest.(check bool) "and no larger sensitive vpt" true
            (sel.Metrics.sensitive_vpt <= base.Metrics.sensitive_vpt));
    ]
