(** Tests for the pta_obs observability layer and its integration with
    the solver: counter determinism, observational transparency of the
    null observer, budget cancellation, and stats JSON round-tripping. *)

module Solver = Pta_solver.Solver
module Budget = Pta_obs.Budget
module Observer = Pta_obs.Observer
module Recorder = Pta_obs.Recorder
module Run_stats = Pta_obs.Run_stats
module Json = Pta_obs.Json
module Driver = Pta_driver.Driver
module Metrics = Pta_clients.Metrics

let tiny_program () =
  Pta_workloads.Workloads.program
    (Option.get (Pta_workloads.Profile.by_name "tiny"))

let collect_run ?(analysis = "S-2obj+H") program =
  match Driver.run ~collect_stats:true program ~analysis with
  | Ok r -> Option.get r.Driver.stats
  | Error e -> Alcotest.failf "driver error: %a" Driver.pp_error e

(* Every non-time field of two identical runs must agree: the solver is
   deterministic, and the recorder must observe it faithfully. *)
let counters_deterministic_test () =
  let program = tiny_program () in
  let s1 = collect_run program and s2 = collect_run program in
  let check name f = Alcotest.(check int) name (f s1) (f s2) in
  check "iterations" (fun s -> s.Run_stats.iterations);
  check "n_nodes" (fun s -> s.Run_stats.n_nodes);
  check "n_edges" (fun s -> s.Run_stats.n_edges);
  check "n_ctxs" (fun s -> s.Run_stats.n_ctxs);
  check "n_hctxs" (fun s -> s.Run_stats.n_hctxs);
  check "n_hobjs" (fun s -> s.Run_stats.n_hobjs);
  check "sensitive_vpt_size" (fun s -> s.Run_stats.sensitive_vpt_size);
  check "triggers" (fun s -> s.Run_stats.triggers);
  check "delta_total" (fun s -> s.Run_stats.delta_total);
  check "max_delta" (fun s -> s.Run_stats.max_delta);
  Alcotest.(check (list string))
    "same phases"
    (List.map fst s1.Run_stats.phases)
    (List.map fst s2.Run_stats.phases)

(* Installing an observer must not change what the solver computes: the
   metric bundle with a live recorder must be identical to the one from
   a bare run (null observer). *)
let observer_transparent_test () =
  let program = tiny_program () in
  let factory = Option.get (Pta_context.Strategies.by_name "S-2obj+H") in
  let bare = Metrics.compute (Solver.solve program (factory program)) in
  let recorder = Recorder.create () in
  let config = Solver.Config.make ~observer:(Recorder.observer recorder) () in
  let observed =
    Metrics.compute (Solver.solve ~config program (factory program))
  in
  Alcotest.(check bool) "identical metric bundles" true (bare = observed);
  Alcotest.(check bool) "recorder saw the run" true (Recorder.nodes recorder > 0)

(* Cancelling the budget from an observer hook must abort the solve
   within one worklist iteration, with a populated abort payload. *)
let budget_cancellation_test () =
  let program = tiny_program () in
  let factory = Option.get (Pta_context.Strategies.by_name "S-2obj+H") in
  let budget = Budget.unlimited () in
  let iterations = ref 0 in
  let cancel_at = 10 in
  let observer =
    Observer.make
      ~on_iteration:(fun () ->
        incr iterations;
        if !iterations = cancel_at then Budget.cancel budget)
      ()
  in
  let config = { Solver.Config.default with budget; observer } in
  match Solver.solve ~config program (factory program) with
  | _ -> Alcotest.fail "expected Solver.Timeout"
  | exception Solver.Timeout abort ->
    (* The tick right after the cancelling hook raises, so no further
       iteration hook runs: the abort happens within one iteration. *)
    Alcotest.(check int) "within one iteration" cancel_at !iterations;
    Alcotest.(check int) "payload iterations" cancel_at abort.Budget.iterations;
    Alcotest.(check bool) "payload nodes" true (abort.Budget.nodes > 0);
    Alcotest.(check bool) "payload elapsed" true (abort.Budget.elapsed_s >= 0.)

let stats_roundtrip_test () =
  let program = tiny_program () in
  let stats = collect_run program in
  let json = Json.to_string (Run_stats.to_json stats) in
  match Json.of_string json with
  | Error msg -> Alcotest.failf "stats JSON does not parse: %s" msg
  | Ok parsed -> (
    match Run_stats.of_json parsed with
    | Error msg -> Alcotest.failf "stats JSON does not decode: %s" msg
    | Ok back ->
      Alcotest.(check string) "analysis" stats.Run_stats.analysis back.Run_stats.analysis;
      Alcotest.(check int) "iterations" stats.Run_stats.iterations back.Run_stats.iterations;
      Alcotest.(check int) "n_nodes" stats.Run_stats.n_nodes back.Run_stats.n_nodes;
      Alcotest.(check int) "n_edges" stats.Run_stats.n_edges back.Run_stats.n_edges;
      Alcotest.(check int) "n_ctxs" stats.Run_stats.n_ctxs back.Run_stats.n_ctxs;
      Alcotest.(check int) "n_hobjs" stats.Run_stats.n_hobjs back.Run_stats.n_hobjs;
      Alcotest.(check int)
        "sensitive_vpt_size" stats.Run_stats.sensitive_vpt_size
        back.Run_stats.sensitive_vpt_size;
      Alcotest.(check (float 1e-9))
        "wall_time_s" stats.Run_stats.wall_time_s back.Run_stats.wall_time_s;
      Alcotest.(check int)
        "phase count"
        (List.length stats.Run_stats.phases)
        (List.length back.Run_stats.phases))

(* The JSON printer/parser pair must round-trip structurally, including
   escapes and numeric edge cases. *)
let json_roundtrip_test () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\n\t\r \x01 é");
        ("i", Json.Int (-42));
        ("big", Json.Int max_int);
        ("f", Json.Float 0.1);
        ("whole", Json.Float 3.0);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Error msg -> Alcotest.failf "printed JSON does not parse: %s" msg
  | Ok v' -> Alcotest.(check bool) "structurally equal" true (v = v')

(* The datalog engine reports through the same instruments. *)
let refimpl_observed_test () =
  let program =
    Pta_frontend.Frontend.program_of_string ~file:"<t>"
      "class Main { static method main() { var x = new Main; } }"
  in
  let strategy = Pta_context.Strategies.get "insens" program in
  let recorder = Recorder.create () in
  let t = Pta_refimpl.Refimpl.run ~observer:(Recorder.observer recorder) program strategy in
  Alcotest.(check bool)
    "facts observed" true
    (Recorder.nodes recorder >= Pta_refimpl.Refimpl.n_var_points_to t);
  Alcotest.(check bool) "rounds observed" true (Recorder.iterations recorder > 0)

(* ------------------------------------------------------------------ *)
(* Memory: Memstats clamping / codec / exception safety, loop sampling *)
(* ------------------------------------------------------------------ *)

module Memstats = Pta_obs.Memstats
module Census = Pta_obs.Census

let snap_with heap : Memstats.snapshot =
  {
    Memstats.minor_words = 0.;
    promoted_words = 0.;
    major_words = 0.;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
    heap_words = heap;
    top_heap_words = heap;
  }

(* A sampled peak can lag (no alarm fired) but never undercut what the
   interval's endpoints saw. *)
let memstats_clamp_test () =
  let before = snap_with 1000 and after = snap_with 500 in
  let d = Memstats.diff ~peak:100 ~before ~after () in
  Alcotest.(check int) "clamped to endpoints" 1000 d.Memstats.peak_heap_words;
  let d = Memstats.diff ~before ~after () in
  Alcotest.(check int) "no sample: endpoints" 1000 d.Memstats.peak_heap_words;
  let d = Memstats.diff ~peak:9999 ~before ~after () in
  Alcotest.(check int) "genuine peak kept" 9999 d.Memstats.peak_heap_words

let memstats_roundtrip_test () =
  let d =
    {
      Memstats.minor_allocated_words = 12345.5;
      promoted_delta_words = 100.;
      major_allocated_words = 600.25;
      minor_collections_delta = 3;
      major_collections_delta = 1;
      compactions_delta = 0;
      heap_words_after = 4096;
      peak_heap_words = 8192;
    }
  in
  match Memstats.of_json (Memstats.to_json d) with
  | Error e -> Alcotest.failf "memstats round-trip: %s" e
  | Ok d' -> Alcotest.(check bool) "identical" true (d = d')

let memstats_tracked_exn_test () =
  Alcotest.check_raises "re-raises" Exit (fun () ->
      ignore (Memstats.tracked (fun () -> raise Exit)));
  (* The alarm must be gone: a fresh tracked call still works. *)
  let x, d = Memstats.tracked (fun () -> 42) in
  Alcotest.(check int) "value" 42 x;
  Alcotest.(check bool) "sane delta" true (d.Memstats.peak_heap_words > 0)

(* A large major-heap allocation that lives only between two major
   collections must be caught by the fixpoint loop's periodic sample:
   the observer plants a ~2M-word block at iteration 3 and drops it a
   few iterations later, and the tracker's peak must include it. *)
let solver_peak_sampling_test () =
  let program = tiny_program () in
  let factory = Option.get (Pta_context.Strategies.by_name "S-2obj+H") in
  let tracker = Memstats.start_tracking () in
  let planted_words = 2_000_000 in
  let planted = ref None in
  let iterations = ref 0 in
  let observer =
    Observer.make
      ~on_iteration:(fun () ->
        incr iterations;
        if !iterations = 3 then
          planted := Some (Bytes.create (planted_words * (Sys.word_size / 8)));
        if !iterations = 8 then begin
          planted := None;
          Gc.compact ()
        end)
      ()
  in
  let config =
    Solver.Config.make ~observer ~mem_tracker:tracker ~mem_sample_every:1 ()
  in
  ignore (Solver.solve ~config program (factory program));
  ignore !planted;
  let d = Memstats.finish tracker in
  Alcotest.(check bool)
    "peak saw the planted block" true
    (d.Memstats.peak_heap_words >= planted_words)

(* ------------------------------------------------------------------ *)
(* Census                                                              *)
(* ------------------------------------------------------------------ *)

let solve_for_census ?(workload = "tiny") ?(analysis = "S-2obj+H") () =
  let program =
    Pta_workloads.Workloads.program
      (Option.get (Pta_workloads.Profile.by_name workload))
  in
  let factory = Option.get (Pta_context.Strategies.by_name analysis) in
  Solver.solve program (factory program)

let census_invariants_test () =
  let solver = solve_for_census () in
  let c = Solver.census solver in
  Alcotest.(check bool) "has components" true (c.Census.components <> []);
  List.iter
    (fun (comp : Census.component) ->
      Alcotest.(check bool)
        (comp.Census.comp_name ^ " retained >= 0")
        true
        (comp.Census.retained_words >= 0);
      Alcotest.(check bool)
        (comp.Census.comp_name ^ " retained <= unshared")
        true
        (comp.Census.retained_words <= comp.Census.unshared_words))
    c.Census.components;
  (* The retained figures are one deduplicated walk, bounded by the
     live major heap at walk time. *)
  Alcotest.(check bool)
    "sum retained <= live heap" true
    (Census.total_retained_words c <= c.Census.live_heap_words);
  (* The flagship components must own something on a solved state. *)
  List.iter
    (fun name ->
      match Census.find c name with
      | None -> Alcotest.failf "component %s missing" name
      | Some comp ->
        Alcotest.(check bool) (name ^ " non-empty") true
          (comp.Census.retained_words > 0))
    [ "points-to-sets"; "node-tables"; "context-tables" ];
  match c.Census.set_hist with
  | None -> Alcotest.fail "set histogram missing"
  | Some h -> Alcotest.(check bool) "hist populated" true (Census.hist_total h > 0)

(* Two independent solves must census identically (same components,
   same word counts, same histogram): the walk sees only deterministic
   structure, never addresses or clocks.  [live_heap_words] is
   process-global state and is excluded — the CLI determinism test
   (two fresh processes) covers the full document. *)
let census_deterministic_test () =
  let survey () =
    let c = Solver.census (solve_for_census ()) in
    ( Json.to_string (Census.components_to_json c.Census.components),
      c.Census.set_hist )
  in
  let comps1, hist1 = survey () in
  let comps2, hist2 = survey () in
  Alcotest.(check string) "components byte-identical" comps1 comps2;
  Alcotest.(check bool) "histograms identical" true (hist1 = hist2)

(* The [cyclic] workload funnels many variables through shared copy
   structure, so its Patricia-tree points-to sets must exhibit real
   structural sharing: materializing every set privately (unshared)
   would cost strictly more than what is retained. *)
let census_sharing_test () =
  let solver = solve_for_census ~workload:"cyclic" () in
  let c = Solver.census solver in
  match Census.find c "points-to-sets" with
  | None -> Alcotest.fail "points-to-sets component missing"
  | Some comp ->
    Alcotest.(check bool) "sharing factor > 1" true
      (Census.sharing_factor comp > 1.)

let census_json_roundtrip_test () =
  let c = Solver.census (solve_for_census ()) in
  match Census.of_json (Census.to_json c) with
  | Error e -> Alcotest.failf "census round-trip: %s" e
  | Ok c' -> Alcotest.(check bool) "identical" true (c = c')

let refimpl_budget_test () =
  let program = tiny_program () in
  let strategy = Pta_context.Strategies.get "S-2obj+H" program in
  let budget = Budget.of_seconds 1e-9 in
  match Pta_refimpl.Refimpl.run ~budget program strategy with
  | _ -> Alcotest.fail "expected Budget.Exhausted"
  | exception Budget.Exhausted _ -> ()

let tests =
  [
    Alcotest.test_case "counters deterministic" `Quick counters_deterministic_test;
    Alcotest.test_case "null observer transparent" `Quick observer_transparent_test;
    Alcotest.test_case "budget cancellation" `Quick budget_cancellation_test;
    Alcotest.test_case "stats JSON round-trip" `Quick stats_roundtrip_test;
    Alcotest.test_case "json round-trip" `Quick json_roundtrip_test;
    Alcotest.test_case "refimpl observed" `Quick refimpl_observed_test;
    Alcotest.test_case "refimpl budget" `Quick refimpl_budget_test;
    Alcotest.test_case "memstats peak clamping" `Quick memstats_clamp_test;
    Alcotest.test_case "memstats JSON round-trip" `Quick
      memstats_roundtrip_test;
    Alcotest.test_case "memstats tracked re-raises" `Quick
      memstats_tracked_exn_test;
    Alcotest.test_case "solver loop samples the peak" `Quick
      solver_peak_sampling_test;
    Alcotest.test_case "census invariants" `Quick census_invariants_test;
    Alcotest.test_case "census deterministic" `Quick census_deterministic_test;
    Alcotest.test_case "census set sharing on cyclic" `Quick
      census_sharing_test;
    Alcotest.test_case "census JSON round-trip" `Quick
      census_json_roundtrip_test;
  ]
