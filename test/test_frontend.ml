(** Frontend tests: lexer, parser, and the lowering pass, including
    error reporting with positions. *)

module Ir = Pta_ir.Ir
open Pta_frontend

let token = Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (Token.to_string t)) ( = )

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src = List.map (fun (t, _, _) -> t) (Lexer.tokenize ~file:"<t>" src)

let lexer_tests =
  [
    Alcotest.test_case "keywords vs identifiers" `Quick (fun () ->
        Alcotest.(check (list token))
          "tokens"
          Token.[ Kw_class; Ident "classy"; Kw_new; Ident "news"; Eof ]
          (toks "class classy new news"));
    Alcotest.test_case "punctuation incl ::" `Quick (fun () ->
        Alcotest.(check (list token))
          "tokens"
          Token.[ Ident "A"; Coloncolon; Ident "m"; Lparen; Rparen; Semi;
                  Colon; Star; Eof ]
          (toks "A::m(); : *"));
    Alcotest.test_case "comments are skipped" `Quick (fun () ->
        Alcotest.(check (list token))
          "tokens"
          Token.[ Ident "a"; Ident "b"; Eof ]
          (toks "a // comment\n/* block\nspanning */ b"));
    Alcotest.test_case "positions track lines and columns" `Quick (fun () ->
        let all = Lexer.tokenize ~file:"<t>" "ab\n  cd" in
        match all with
        | [ (_, p1, q1); (_, p2, q2); _ ] ->
          Alcotest.(check (pair int int)) "ab" (1, 1) (p1.Srcloc.line, p1.Srcloc.col);
          Alcotest.(check (pair int int)) "ab end" (1, 3) (q1.Srcloc.line, q1.Srcloc.col);
          Alcotest.(check (pair int int)) "cd" (2, 3) (p2.Srcloc.line, p2.Srcloc.col);
          Alcotest.(check (pair int int)) "cd end" (2, 5) (q2.Srcloc.line, q2.Srcloc.col)
        | _ -> Alcotest.fail "expected three tokens");
    Alcotest.test_case "invalid character reported" `Quick (fun () ->
        match toks "a ? b" with
        | _ -> Alcotest.fail "expected lexer error"
        | exception Srcloc.Error (_, msg) ->
          Alcotest.(check bool) "message" true
            (String.length msg > 0 && String.sub msg 0 7 = "invalid"));
    Alcotest.test_case "unterminated block comment reported" `Quick (fun () ->
        match toks "a /* oops" with
        | _ -> Alcotest.fail "expected lexer error"
        | exception Srcloc.Error (_, _) -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse src = Parser.parse_string ~file:"<t>" src

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let expect_syntax_error src fragment =
  match parse src with
  | _ -> Alcotest.failf "expected syntax error on %S" src
  | exception Srcloc.Error (_, msg) ->
    if not (contains msg fragment) then
      Alcotest.failf "error %S does not mention %S" msg fragment

let parser_tests =
  [
    Alcotest.test_case "class with members" `Quick (fun () ->
        match parse "class A extends B implements I, J { field f; method m(x, y) { } }" with
        | [ c ] ->
          Alcotest.(check string) "name" "A" c.Ast.c_name;
          Alcotest.(check (option string)) "super" (Some "B") c.Ast.c_super;
          Alcotest.(check (list string)) "ifaces" [ "I"; "J" ] c.Ast.c_ifaces;
          Alcotest.(check int) "fields" 1 (List.length c.Ast.c_fields);
          (match c.Ast.c_meths with
          | [ m ] ->
            Alcotest.(check (list string)) "params" [ "x"; "y" ] m.Ast.m_params
          | _ -> Alcotest.fail "one method expected")
        | _ -> Alcotest.fail "one class expected");
    Alcotest.test_case "interface methods are abstract" `Quick (fun () ->
        match parse "interface I { method m(x); }" with
        | [ c ] ->
          Alcotest.(check bool) "kind" true (c.Ast.c_kind = Ast.K_interface);
          Alcotest.(check bool) "abstract" true
            (List.for_all (fun m -> m.Ast.m_abstract) c.Ast.c_meths)
        | _ -> Alcotest.fail "one interface expected");
    Alcotest.test_case "expression statements must be calls" `Quick (fun () ->
        expect_syntax_error "class A { method m() { x; } }" "must be a call");
    Alcotest.test_case "chained postfix parses" `Quick (fun () ->
        match parse "class A { method m(x) { var v = x.f.g(this).h; } }" with
        | [ _ ] -> ()
        | _ -> Alcotest.fail "parse failed");
    Alcotest.test_case "casts parse with nesting" `Quick (fun () ->
        match parse "class A { method m(x) { var v = (A) (B) x.f; } }" with
        | [ _ ] -> ()
        | _ -> Alcotest.fail "parse failed");
    Alcotest.test_case "if requires star condition" `Quick (fun () ->
        expect_syntax_error "class A { method m() { if (x) { } } }" "expected");
    Alcotest.test_case "missing semicolon reported" `Quick (fun () ->
        expect_syntax_error "class A { method m() { var x = this } }" "expected");
    Alcotest.test_case "static interface methods rejected" `Quick (fun () ->
        expect_syntax_error "interface I { static method m(); }" "static");
  ]

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let lower src = Frontend.program_of_string ~file:"<t>" src

let expect_semantic_error src fragment =
  match lower src with
  | _ -> Alcotest.failf "expected semantic error on %S" src
  | exception Srcloc.Error (_, msg) ->
    if not (contains msg fragment) then
      Alcotest.failf "error %S does not mention %S" msg fragment

let lower_tests =
  [
    Alcotest.test_case "Object synthesized as root" `Quick (fun () ->
        let p = lower "class A { }" in
        Alcotest.(check bool) "Object exists" true (Ir.Program.find_type p "Object" <> None);
        let a = Option.get (Ir.Program.find_type p "A") in
        Alcotest.(check (option string)) "A extends Object" (Some "Object")
          (Option.map (Ir.Program.type_name p) (Ir.Program.type_info p a).Ir.superclass));
    Alcotest.test_case "entry points discovered" `Quick (fun () ->
        let p = lower "class A { static method main() { } } class B { static method main() { } } class C { method main() { } }" in
        Alcotest.(check int) "two static mains" 2 (List.length (Ir.Program.entries p)));
    Alcotest.test_case "temporaries introduced for nested expressions" `Quick
      (fun () ->
        let p =
          lower
            "class A { field f; method id(x) { return x; } static method main() { var a = new A; var b = a.id(a.f); } }"
        in
        (* a.f must be loaded into a temp before the call *)
        let main = Option.get (Ir.Program.find_meth p "A" "main" 0) in
        let body = (Ir.Program.meth_info p main).Ir.body in
        let loads = ref 0 and calls = ref 0 in
        Ir.iter_instrs
          (fun i ->
            match i with
            | Ir.Load _ -> incr loads
            | Ir.Virtual_call _ -> incr calls
            | _ -> ())
          body;
        Alcotest.(check int) "one load" 1 !loads;
        Alcotest.(check int) "one call" 1 !calls);
    Alcotest.test_case "returns merge into one return variable" `Quick (fun () ->
        let p =
          lower
            "class A { method pick(x, y) { if (*) { return x; } return y; } }"
        in
        let m = Option.get (Ir.Program.find_meth p "A" "pick" 2) in
        Alcotest.(check bool) "has ret var" true
          ((Ir.Program.meth_info p m).Ir.ret_var <> None));
    Alcotest.test_case "inheritance cycle detected" `Quick (fun () ->
        expect_semantic_error "class A extends B { } class B extends A { }" "cycle");
    Alcotest.test_case "unknown types reported" `Quick (fun () ->
        expect_semantic_error "class A extends Nope { }" "unknown type";
        expect_semantic_error "class A { method m() { var x = new Ghost; } }"
          "unknown type");
    Alcotest.test_case "interface misuse reported" `Quick (fun () ->
        expect_semantic_error "interface I { } class A extends I { }" "cannot extend";
        expect_semantic_error "class B { } class A implements B { }" "not an interface";
        expect_semantic_error "interface I { } class A { method m() { var x = new I; } }"
          "cannot instantiate");
    Alcotest.test_case "static call resolution" `Quick (fun () ->
        expect_semantic_error "class A { method m() { A::nope(); } }" "no static method";
        (* inherited statics resolve *)
        let p =
          lower
            "class A { static method util() { } } class B extends A { } class C { static method main() { B::util(); } }"
        in
        Alcotest.(check bool) "ok" true (Ir.Program.n_meths p > 0));
    Alcotest.test_case "this in static method rejected" `Quick (fun () ->
        expect_semantic_error "class A { static method m() { var x = this; } }"
          "static");
    Alcotest.test_case "unbound variable reported" `Quick (fun () ->
        expect_semantic_error "class A { method m() { var x = y; } }" "unbound");
    Alcotest.test_case "duplicate declarations reported" `Quick (fun () ->
        expect_semantic_error "class A { } class A { }" "duplicate type";
        expect_semantic_error "class A { method m() { } method m() { } }"
          "duplicate method";
        expect_semantic_error "class A { method m() { var x; var x; } }"
          "duplicate variable";
        expect_semantic_error "class A { method m(x, x) { } }" "duplicate parameter");
    Alcotest.test_case "constructor requires init" `Quick (fun () ->
        expect_semantic_error "class A { } class B { method m() { var x = new A(x); } }"
          "no constructor";
        let p =
          lower
            "class A { method init(x) { } } class B { static method main() { var a = new A(null); } }"
        in
        Alcotest.(check bool) "ok" true (Ir.Program.n_meths p > 0));
  ]

let tests = lexer_tests @ parser_tests @ lower_tests
