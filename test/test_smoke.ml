(** End-to-end smoke tests: parse a small MJ program, run an analysis,
    check the points-to facts by hand. *)

let simple_flow () =
  Helpers.check_points_to
    {|
    class A {}
    class B {}
    class Main {
      static method main() {
        var a = new A;
        var b = new B;
        var c = a;
        c = b;
      }
    }
    |}
    "Main" "main" 0 "c" [ "Main.main:A"; "Main.main:B" ]

let field_flow () =
  Helpers.check_points_to
    {|
    class Box { field value; }
    class A {}
    class Main {
      static method main() {
        var box = new Box;
        var a = new A;
        box.value = a;
        var out = box.value;
      }
    }
    |}
    "Main" "main" 0 "out" [ "Main.main:A" ]

let virtual_dispatch () =
  Helpers.check_points_to
    {|
    class Animal { method mate() : Animal { return new Animal; } }
    class Dog extends Animal { method mate() : Animal { return new Dog; } }
    class Main {
      static method main() {
        var d = new Dog;
        var m = d.mate();
      }
    }
    |}
    "Main" "main" 0 "m" [ "Dog.mate:Dog" ]

let static_call_flow () =
  Helpers.check_points_to
    {|
    class A {}
    class Util {
      static method id(x) { return x; }
    }
    class Main {
      static method main() {
        var a = new A;
        var out = Util::id(a);
      }
    }
    |}
    "Main" "main" 0 "out" [ "Main.main:A" ]

let cast_filters () =
  Helpers.check_points_to
    {|
    class A {}
    class B {}
    class Main {
      static method main() {
        var x = new A;
        if (*) { x = new B; }
        var y = (A) x;
      }
    }
    |}
    "Main" "main" 0 "y" [ "Main.main:A" ]

let constructor_call () =
  Helpers.check_points_to
    {|
    class Item {}
    class Box {
      field content;
      method init(x) { this.content = x; }
      method get() { return this.content; }
    }
    class Main {
      static method main() {
        var item = new Item;
        var box = new Box(item);
        var out = box.get();
      }
    }
    |}
    "Main" "main" 0 "out" [ "Main.main:Item" ]

(* The paper's motivating point for object-sensitivity: two boxes filled
   through the same setter must not be conflated by 1obj. *)
let obj_sensitivity_separates () =
  let src =
    {|
    class A {}
    class B {}
    class Box {
      field content;
      method set(x) { this.content = x; }
      method get() { return this.content; }
    }
    class Main {
      static method main() {
        var box1 = new Box;
        var box2 = new Box;
        var a = new A;
        var b = new B;
        box1.set(a);
        box2.set(b);
        var outa = box1.get();
        var outb = box2.get();
      }
    }
    |}
  in
  Helpers.check_points_to ~strategy:"1obj" src "Main" "main" 0 "outa"
    [ "Main.main:A" ];
  Helpers.check_points_to ~strategy:"1obj" src "Main" "main" 0 "outb"
    [ "Main.main:B" ];
  (* A context-insensitive analysis conflates the two boxes. *)
  Helpers.check_points_to ~strategy:"insens" src "Main" "main" 0 "outa"
    [ "Main.main:A"; "Main.main:B" ]

(* Call-site sensitivity distinguishes call sites of a static identity
   function where a context-insensitive analysis merges them. *)
let call_sensitivity_separates () =
  let src =
    {|
    class A {}
    class B {}
    class Util { static method id(x) { return x; } }
    class Main {
      static method main() {
        var a = new A;
        var b = new B;
        var outa = Util::id(a);
        var outb = Util::id(b);
      }
    }
    |}
  in
  Helpers.check_points_to ~strategy:"1call" src "Main" "main" 0 "outa"
    [ "Main.main:A" ];
  Helpers.check_points_to ~strategy:"insens" src "Main" "main" 0 "outa"
    [ "Main.main:A"; "Main.main:B" ];
  (* 1obj copies the caller context into static callees, so it also
     conflates the two call sites here... *)
  Helpers.check_points_to ~strategy:"1obj" src "Main" "main" 0 "outa"
    [ "Main.main:A"; "Main.main:B" ];
  (* ...which is exactly what the selective hybrids repair. *)
  Helpers.check_points_to ~strategy:"SA-1obj" src "Main" "main" 0 "outa"
    [ "Main.main:A" ];
  Helpers.check_points_to ~strategy:"SB-1obj" src "Main" "main" 0 "outa"
    [ "Main.main:A" ]

let all_strategies_terminate () =
  let src =
    {|
    class Node {
      field next;
      method init(n) { this.next = n; }
    }
    class Main {
      static method main() {
        var head = new Node(null);
        while (*) {
          head = new Node(head);
        }
        var cursor = head;
        while (*) {
          cursor = cursor.next;
        }
      }
    }
    |}
  in
  let p = Helpers.program src in
  List.iter
    (fun (name, factory) ->
      let solver = Pta_solver.Solver.solve p (factory p) in
      Alcotest.(check bool)
        (name ^ " reaches main") true
        (Pta_solver.Solver.n_reachable_cs solver > 0))
    Pta_context.Strategies.all

let tests =
  [
    Alcotest.test_case "simple flow" `Quick simple_flow;
    Alcotest.test_case "field flow" `Quick field_flow;
    Alcotest.test_case "virtual dispatch" `Quick virtual_dispatch;
    Alcotest.test_case "static call flow" `Quick static_call_flow;
    Alcotest.test_case "cast filters" `Quick cast_filters;
    Alcotest.test_case "constructor call" `Quick constructor_call;
    Alcotest.test_case "1obj separates receivers" `Quick obj_sensitivity_separates;
    Alcotest.test_case "call-site context separates statics" `Quick
      call_sensitivity_separates;
    Alcotest.test_case "all strategies terminate" `Quick all_strategies_terminate;
  ]
