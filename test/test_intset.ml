(** Patricia-tree integer sets: unit tests plus qcheck properties
    against the model implementation [Stdlib.Set.Make(Int)]. *)

module Intset = Pta_solver.Intset
module M = Set.Make (Int)

let of_model m = M.fold Intset.add m Intset.empty
let to_model s = Intset.fold (fun i acc -> M.add i acc) s M.empty

let ints_arb = QCheck.(list_of_size Gen.(int_bound 200) (int_bound 10_000))

let model_of_list l = M.of_list l
let set_of_list l = Intset.of_list l

let prop name gen f = QCheck.Test.make ~count:500 ~name gen f

let qcheck_tests =
  [
    prop "mem agrees with model" QCheck.(pair ints_arb (int_bound 10_000))
      (fun (l, x) -> Intset.mem x (set_of_list l) = M.mem x (model_of_list l));
    prop "union agrees with model" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        M.equal
          (to_model (Intset.union (set_of_list a) (set_of_list b)))
          (M.union (model_of_list a) (model_of_list b)));
    prop "inter agrees with model" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        M.equal
          (to_model (Intset.inter (set_of_list a) (set_of_list b)))
          (M.inter (model_of_list a) (model_of_list b)));
    prop "diff agrees with model" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        M.equal
          (to_model (Intset.diff (set_of_list a) (set_of_list b)))
          (M.diff (model_of_list a) (model_of_list b)));
    prop "remove agrees with model" QCheck.(pair ints_arb (int_bound 10_000))
      (fun (l, x) ->
        M.equal
          (to_model (Intset.remove x (set_of_list l)))
          (M.remove x (model_of_list l)));
    prop "cardinal agrees with model" ints_arb (fun l ->
        Intset.cardinal (set_of_list l) = M.cardinal (model_of_list l));
    prop "subset agrees with model" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        Intset.subset (set_of_list a) (set_of_list b)
        = M.subset (model_of_list a) (model_of_list b));
    prop "elements sorted and deduplicated" ints_arb (fun l ->
        Intset.elements (set_of_list l) = M.elements (model_of_list l));
    prop "equal is extensional" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        Intset.equal (set_of_list a) (set_of_list b)
        = M.equal (model_of_list a) (model_of_list b));
    prop "canonical structure: permutation-insensitive build" ints_arb
      (fun l ->
        Intset.equal (set_of_list l) (set_of_list (List.rev l)));
    prop "union idempotent" ints_arb (fun l ->
        let s = set_of_list l in
        Intset.equal (Intset.union s s) s);
    prop "diff2 agrees with double diff" QCheck.(triple ints_arb ints_arb ints_arb)
      (fun (s, a, b) ->
        M.equal
          (to_model (Intset.diff2 (set_of_list s) (set_of_list a) (set_of_list b)))
          (M.diff (M.diff (model_of_list s) (model_of_list a)) (model_of_list b)));
    prop "union_stats set agrees with union" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        let u, _ = Intset.union_stats (set_of_list a) (set_of_list b) in
        M.equal (to_model u) (M.union (model_of_list a) (model_of_list b)));
    prop "union_stats growth flag = not (subset b a)"
      QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        let _, grew = Intset.union_stats (set_of_list a) (set_of_list b) in
        grew = not (M.subset (model_of_list b) (model_of_list a)));
    prop "filter even" ints_arb (fun l ->
        M.equal
          (to_model (Intset.filter (fun x -> x mod 2 = 0) (set_of_list l)))
          (M.filter (fun x -> x mod 2 = 0) (model_of_list l)));
    prop "for_all/exists" ints_arb (fun l ->
        let s = set_of_list l and m = model_of_list l in
        Intset.for_all (fun x -> x >= 0) s = M.for_all (fun x -> x >= 0) m
        && Intset.exists (fun x -> x > 5_000) s = M.exists (fun x -> x > 5_000) m);
  ]

let unit_tests =
  [
    Alcotest.test_case "empty basics" `Quick (fun () ->
        Alcotest.(check bool) "is_empty" true (Intset.is_empty Intset.empty);
        Alcotest.(check int) "cardinal" 0 (Intset.cardinal Intset.empty);
        Alcotest.(check (option int)) "choose" None (Intset.choose_opt Intset.empty));
    Alcotest.test_case "negative elements rejected" `Quick (fun () ->
        Alcotest.check_raises "add" (Invalid_argument "Intset: negative element")
          (fun () -> ignore (Intset.add (-1) Intset.empty));
        Alcotest.check_raises "singleton"
          (Invalid_argument "Intset: negative element") (fun () ->
            ignore (Intset.singleton (-5))));
    Alcotest.test_case "sharing-friendly union returns same set" `Quick (fun () ->
        let s = Intset.of_list [ 1; 2; 3; 1000; 65536 ] in
        Alcotest.(check bool) "s union s == s" true (Intset.union s s == s);
        Alcotest.(check bool)
          "s union empty == s" true
          (Intset.union s Intset.empty == s));
    Alcotest.test_case "union_stats no-growth path preserves sharing" `Quick
      (fun () ->
        let s = Intset.of_list [ 1; 2; 3; 1000; 65536 ] in
        let sub = Intset.of_list [ 2; 1000 ] in
        let u, grew = Intset.union_stats s sub in
        Alcotest.(check bool) "no growth" false grew;
        Alcotest.(check bool) "result is s itself" true (u == s);
        let u2, grew2 = Intset.union_stats s (Intset.singleton 7) in
        Alcotest.(check bool) "growth" true grew2;
        Alcotest.(check bool) "result has 7" true (Intset.mem 7 u2));
    Alcotest.test_case "diff2 sharing and fast paths" `Quick (fun () ->
        let s = Intset.of_list [ 1; 5; 9; 4096 ] in
        Alcotest.(check bool)
          "disjoint subtrahends return s" true
          (Intset.diff2 s (Intset.singleton 2) (Intset.singleton 6) == s);
        Alcotest.(check bool)
          "s \\ s \\ b is empty" true
          (Intset.is_empty (Intset.diff2 s s (Intset.singleton 1)));
        Alcotest.(check bool)
          "s \\ a \\ s is empty" true
          (Intset.is_empty (Intset.diff2 s (Intset.singleton 1) s)));
    Alcotest.test_case "equal/subset short-circuit on shared subtrees" `Quick
      (fun () ->
        (* Two sets sharing a large subtree: [union] preserves sharing, so
           [equal]/[subset] must cut off without descending it.  Observable
           cheaply: physically equal sets answer immediately. *)
        let big = Intset.of_list (List.init 500 (fun i -> i * 7)) in
        let a = Intset.union big (Intset.singleton 999_999) in
        let b = Intset.union big (Intset.singleton 999_999) in
        Alcotest.(check bool) "equal" true (Intset.equal a b);
        Alcotest.(check bool) "subset" true (Intset.subset big a);
        Alcotest.(check bool) "self subset" true (Intset.subset a a));
    Alcotest.test_case "large and boundary values" `Quick (fun () ->
        let big = max_int / 2 in
        let s = Intset.of_list [ 0; 1; big; big - 1 ] in
        Alcotest.(check bool) "mem big" true (Intset.mem big s);
        Alcotest.(check int) "cardinal" 4 (Intset.cardinal s));
  ]

let tests = unit_tests @ List.map QCheck_alcotest.to_alcotest qcheck_tests
