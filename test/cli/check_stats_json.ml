(* Schema check for `pointsto analyze --stats-json`: the emitted file
   must be valid JSON carrying the documented keys with the documented
   types.  Time-valued fields vary run to run, so only presence and type
   are checked here — value determinism is covered by test_obs. *)

module Json = Pta_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ -> fail "usage: check_stats_json FILE"
  in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let json =
    match Json.of_string contents with
    | Ok json -> json
    | Error msg -> fail "%s: not valid JSON: %s" path msg
  in
  let get name =
    match Json.member name json with
    | Some v -> v
    | None -> fail "%s: key %S missing" path name
  in
  let check name kind decode =
    match decode (get name) with
    | Some _ -> ()
    | None -> fail "%s: key %S is not %s" path name kind
  in
  check "analysis" "a string" Json.to_str;
  check "wall_time_s" "a number" Json.to_float;
  List.iter
    (fun name -> check name "an integer" Json.to_int)
    [
      "iterations"; "n_nodes"; "n_edges"; "n_ctxs"; "n_hctxs"; "n_hobjs";
      "sensitive_vpt_size"; "triggers"; "delta_total"; "max_delta";
    ];
  (match Json.to_obj (get "phases") with
  | None -> fail "%s: key \"phases\" is not an object" path
  | Some phases ->
    if not (List.mem_assoc "fixpoint" phases) then
      fail "%s: phases lacks a \"fixpoint\" entry" path;
    List.iter
      (fun (name, v) ->
        match Json.to_float v with
        | Some _ -> ()
        | None -> fail "%s: phase %S is not a number" path name)
      phases);
  (* --stats-json implies a live metric registry, so the document must
     carry the GC profile, the metrics export, and the build stamp. *)
  (match Json.to_obj (get "memory") with
  | None -> fail "%s: key \"memory\" is not an object" path
  | Some fields ->
    List.iter
      (fun name ->
        match Option.bind (List.assoc_opt name fields) Json.to_float with
        | Some _ -> ()
        | None -> fail "%s: memory.%s missing or not a number" path name)
      [
        "minor_allocated_words"; "major_allocated_words"; "peak_heap_words";
        "major_collections";
      ]);
  (match Json.to_obj (get "metrics") with
  | None -> fail "%s: key \"metrics\" is not an object" path
  | Some families ->
    List.iter
      (fun name ->
        if not (List.mem_assoc name families) then
          fail "%s: metrics lacks the %S family" path name)
      [
        "pta_gc_peak_heap_words"; "pta_solver_nodes"; "pta_solver_pts_size";
        (* cycle-elimination counters: registered eagerly, so present
           (zero-valued) even when the program is too small to trigger a
           collapse *)
        "pta_solver_sccs_collapsed_total"; "pta_solver_nodes_unified_total";
        "pta_solver_redundant_visits_avoided_total";
        (* parallel-drain telemetry: likewise eager, zero-valued on a
           sequential (jobs=1) run *)
        "pta_solver_steals_total"; "pta_solver_mailbox_deltas_total";
        "pta_solver_domain_iterations_total"; "pta_solver_domains";
      ]);
  (match Json.to_obj (get "pointsto") with
  | None -> fail "%s: key \"pointsto\" is not an object" path
  | Some stamp ->
    List.iter
      (fun name ->
        match Option.bind (List.assoc_opt name stamp) Json.to_str with
        | Some _ -> ()
        | None -> fail "%s: pointsto.%s missing or not a string" path name)
      [ "version"; "commit"; "ocaml"; "profile" ]);
  print_endline "stats JSON schema ok"
