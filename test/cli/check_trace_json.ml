(* Schema check for `pointsto ... --trace`: the file must be a valid
   Chrome trace-event JSON array whose events carry "name"/"ph"/"ts",
   and must contain the spans the given engine is expected to emit:

     solver  — per-edge-kind "solver" spans and the four "gauge"
               counters the driver samples at fixpoint;
     datalog — per-rule "rule" spans from the reference engine.

   Because the checked file was captured from stdout (--trace -), its
   parsing cleanly also proves the human-readable report did not
   interleave with the machine output. *)

module Json = Pta_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path, mode =
    match Sys.argv with
    | [| _; path; ("solver" | "datalog") as mode |] -> (path, mode)
    | _ -> fail "usage: check_trace_json FILE (solver|datalog)"
  in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let events =
    match Json.of_string contents with
    | Ok (Json.List evs) -> evs
    | Ok _ -> fail "%s: not a JSON array" path
    | Error msg -> fail "%s: not valid JSON: %s" path msg
  in
  if events = [] then fail "%s: empty trace" path;
  let str_field ev name = Option.bind (Json.member name ev) Json.to_str in
  List.iter
    (fun ev ->
      (match str_field ev "name" with
      | Some _ -> ()
      | None -> fail "%s: event lacks a string \"name\"" path);
      (match Option.bind (Json.member "ts" ev) Json.to_float with
      | Some _ -> ()
      | None -> fail "%s: event lacks a numeric \"ts\"" path);
      match str_field ev "ph" with
      | Some ("B" | "E" | "X" | "i" | "C") -> ()
      | Some ph -> fail "%s: unknown ph %S" path ph
      | None -> fail "%s: event lacks a string \"ph\"" path)
    events;
  let has ~cat ~name =
    List.exists
      (fun ev -> str_field ev "cat" = Some cat && str_field ev "name" = Some name)
      events
  in
  let require ~cat ~name =
    if not (has ~cat ~name) then
      fail "%s: no %S event named %S" path cat name
  in
  (match mode with
  | "solver" ->
    List.iter
      (fun name -> require ~cat:"solver" ~name)
      [ "move"; "load"; "store"; "vcall"; "scall" ];
    List.iter
      (fun name -> require ~cat:"gauge" ~name)
      [ "contexts"; "avg objs per var"; "reachable methods"; "call-graph edges" ]
  | _ ->
    List.iter
      (fun name -> require ~cat:"rule" ~name)
      [ "alloc"; "move"; "load"; "store"; "vcall" ]);
  Printf.printf "trace JSON schema ok (%s)\n" mode
