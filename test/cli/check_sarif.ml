(* Schema check for `pointsto check --format sarif`: the document must be
   valid JSON with the SARIF 2.1.0 skeleton — a version string, exactly
   one run, a tool driver declaring at least one rule, and every result
   referencing a declared rule with a physical location.  Byte-level
   determinism across runs is checked separately in the dune rules. *)

module Json = Pta_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ -> fail "usage: check_sarif FILE"
  in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let json =
    match Json.of_string contents with
    | Ok json -> json
    | Error msg -> fail "%s: not valid JSON: %s" path msg
  in
  (match Option.bind (Json.member "version" json) Json.to_str with
  | Some "2.1.0" -> ()
  | Some v -> fail "%s: version is %S, expected \"2.1.0\"" path v
  | None -> fail "%s: missing \"version\"" path);
  let run =
    match Option.bind (Json.member "runs" json) Json.to_list with
    | Some [ run ] -> run
    | Some runs -> fail "%s: expected one run, found %d" path (List.length runs)
    | None -> fail "%s: missing \"runs\"" path
  in
  let rules =
    match
      Option.bind (Json.member "tool" run) (Json.member "driver")
      |> Fun.flip Option.bind (Json.member "rules")
      |> Fun.flip Option.bind Json.to_list
    with
    | Some [] -> fail "%s: driver declares no rules" path
    | Some rules -> rules
    | None -> fail "%s: missing tool.driver.rules" path
  in
  let rule_ids =
    List.filter_map (fun r -> Option.bind (Json.member "id" r) Json.to_str) rules
  in
  let results =
    match Option.bind (Json.member "results" run) Json.to_list with
    | Some results -> results
    | None -> fail "%s: missing \"results\"" path
  in
  List.iteri
    (fun i result ->
      (match Option.bind (Json.member "ruleId" result) Json.to_str with
      | Some id when List.mem id rule_ids -> ()
      | Some id -> fail "%s: result %d references undeclared rule %S" path i id
      | None -> fail "%s: result %d lacks a ruleId" path i);
      match Option.bind (Json.member "locations" result) Json.to_list with
      | Some (loc :: _) ->
        if
          Json.member "physicalLocation" loc
          |> Fun.flip Option.bind (Json.member "artifactLocation")
          |> Fun.flip Option.bind (Json.member "uri")
          |> Fun.flip Option.bind Json.to_str
          = None
        then fail "%s: result %d lacks a physical location URI" path i
      | _ -> fail "%s: result %d has no locations" path i)
    results;
  Printf.printf "SARIF schema ok: %d rule(s), %d result(s)\n"
    (List.length rule_ids) (List.length results)
