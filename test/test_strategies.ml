(** Unit tests for the context constructor functions: each strategy's
    [Record]/[Merge]/[MergeStatic] must produce exactly the tuples the
    paper's equations specify (Sections 2.2, 3.1, 3.2). *)

module Ir = Pta_ir.Ir
module Ctx = Pta_context.Ctx
module Strategies = Pta_context.Strategies

(* A real program is needed only for CA (class of allocation); build one
   where the sites are easy to name. *)
let program =
  Pta_frontend.Frontend.program_of_string ~file:"<t>"
    {|
    class A { method m() { var x = new A; return x; } }
    class B { method m() { var x = new B; return x; } }
    class Main { static method main() { var a = new A; var b = a.m(); } }
    |}

let heap_in cls =
  let found = ref None in
  Ir.Program.iter_heaps program (fun h info ->
      let owner = Ir.Program.meth_info program info.Ir.heap_owner in
      if String.equal (Ir.Program.type_name program owner.Ir.meth_owner) cls then
        found := Some h);
  Option.get !found

let heap_a = heap_in "A"
let heap_b = heap_in "B"
let invo1 = Ir.Invo_id.of_int 0
let invo2 = Ir.Invo_id.of_int 1

let value = Alcotest.testable (Ctx.pp_value program) Ctx.value_equal
let star = Ctx.Star
let h x = Ctx.Heap x
let i x = Ctx.Invo x

let ca heap = Ctx.Type (Strategies.class_of_alloc program heap)

let strategy name = (Option.get (Strategies.by_name name)) program

let check_record name ~heap ~ctx expected =
  let s = strategy name in
  Alcotest.check value (name ^ ".record") expected (s.record ~heap ~ctx)

let check_merge name ~heap ~hctx ~invo ~ctx expected =
  let s = strategy name in
  Alcotest.check value (name ^ ".merge") expected (s.merge ~heap ~hctx ~invo ~callee:(Ir.Meth_id.of_int 0) ~ctx)

let check_merge_static name ~invo ~ctx expected =
  let s = strategy name in
  Alcotest.check value (name ^ ".merge_static") expected (s.merge_static ~invo ~callee:(Ir.Meth_id.of_int 0) ~ctx)

let tests =
  [
    Alcotest.test_case "insens" `Quick (fun () ->
        check_record "insens" ~heap:heap_a ~ctx:[||] [||];
        check_merge "insens" ~heap:heap_a ~hctx:[||] ~invo:invo1 ~ctx:[||] [||];
        check_merge_static "insens" ~invo:invo1 ~ctx:[||] [||]);
    Alcotest.test_case "1call" `Quick (fun () ->
        check_record "1call" ~heap:heap_a ~ctx:[| i invo1 |] [||];
        check_merge "1call" ~heap:heap_a ~hctx:[||] ~invo:invo2 ~ctx:[| i invo1 |]
          [| i invo2 |];
        check_merge_static "1call" ~invo:invo2 ~ctx:[| i invo1 |] [| i invo2 |]);
    Alcotest.test_case "1call+H records the caller context" `Quick (fun () ->
        check_record "1call+H" ~heap:heap_a ~ctx:[| i invo1 |] [| i invo1 |]);
    Alcotest.test_case "2call+H shifts the call string" `Quick (fun () ->
        check_merge "2call+H" ~heap:heap_a ~hctx:[||] ~invo:invo2
          ~ctx:[| i invo1; star |]
          [| i invo2; i invo1 |];
        check_record "2call+H" ~heap:heap_a ~ctx:[| i invo1; i invo2 |] [| i invo1 |]);
    Alcotest.test_case "1obj" `Quick (fun () ->
        check_record "1obj" ~heap:heap_a ~ctx:[| star |] [||];
        check_merge "1obj" ~heap:heap_a ~hctx:[||] ~invo:invo1 ~ctx:[| star |]
          [| h heap_a |];
        (* static calls copy the caller's context *)
        check_merge_static "1obj" ~invo:invo1 ~ctx:[| h heap_b |] [| h heap_b |]);
    Alcotest.test_case "2obj+H" `Quick (fun () ->
        (* merge = pair(heap, hctx) *)
        check_merge "2obj+H" ~heap:heap_a ~hctx:[| h heap_b |] ~invo:invo1
          ~ctx:[| star; star |]
          [| h heap_a; h heap_b |];
        (* record = first(ctx) *)
        check_record "2obj+H" ~heap:heap_a ~ctx:[| h heap_b; h heap_a |] [| h heap_b |];
        check_merge_static "2obj+H" ~invo:invo1 ~ctx:[| h heap_a; h heap_b |]
          [| h heap_a; h heap_b |]);
    Alcotest.test_case "2type+H maps CA over the receiver" `Quick (fun () ->
        check_merge "2type+H" ~heap:heap_a ~hctx:[| ca heap_b |] ~invo:invo1
          ~ctx:[| star; star |]
          [| ca heap_a; ca heap_b |];
        Alcotest.(check string)
          "CA(heap in A.m) = A" "A"
          (Ir.Program.type_name program (Strategies.class_of_alloc program heap_a)));
    Alcotest.test_case "U-1obj keeps both elements" `Quick (fun () ->
        check_merge "U-1obj" ~heap:heap_a ~hctx:[||] ~invo:invo1 ~ctx:[| star; star |]
          [| h heap_a; i invo1 |];
        check_merge_static "U-1obj" ~invo:invo2 ~ctx:[| h heap_a; i invo1 |]
          [| h heap_a; i invo2 |]);
    Alcotest.test_case "U-2obj+H is a triple" `Quick (fun () ->
        check_merge "U-2obj+H" ~heap:heap_a ~hctx:[| h heap_b |] ~invo:invo1
          ~ctx:[| star; star; star |]
          [| h heap_a; h heap_b; i invo1 |];
        check_merge_static "U-2obj+H" ~invo:invo2
          ~ctx:[| h heap_a; h heap_b; i invo1 |]
          [| h heap_a; h heap_b; i invo2 |];
        (* record keeps the most significant element, as in 2obj+H *)
        check_record "U-2obj+H" ~heap:heap_a ~ctx:[| h heap_b; h heap_a; i invo1 |]
          [| h heap_b |]);
    Alcotest.test_case "SA-1obj switches element kinds" `Quick (fun () ->
        check_merge "SA-1obj" ~heap:heap_a ~hctx:[||] ~invo:invo1 ~ctx:[| i invo2 |]
          [| h heap_a |];
        check_merge_static "SA-1obj" ~invo:invo1 ~ctx:[| h heap_a |] [| i invo1 |]);
    Alcotest.test_case "SB-1obj pads virtual contexts with star" `Quick (fun () ->
        check_merge "SB-1obj" ~heap:heap_a ~hctx:[||] ~invo:invo1 ~ctx:[| star; star |]
          [| h heap_a; star |];
        check_merge_static "SB-1obj" ~invo:invo1 ~ctx:[| h heap_a; star |]
          [| h heap_a; i invo1 |]);
    Alcotest.test_case "S-2obj+H static chains favor call sites" `Quick (fun () ->
        (* virtual: triple(heap, hctx, * ) *)
        check_merge "S-2obj+H" ~heap:heap_a ~hctx:[| h heap_b |] ~invo:invo1
          ~ctx:[| star; star; star |]
          [| h heap_a; h heap_b; star |];
        (* first static call: invocation site slides into second place *)
        check_merge_static "S-2obj+H" ~invo:invo1 ~ctx:[| h heap_a; h heap_b; star |]
          [| h heap_a; i invo1; h heap_b |];
        (* second static call: two invocation sites, heap part retained *)
        check_merge_static "S-2obj+H" ~invo:invo2 ~ctx:[| h heap_a; i invo1; h heap_b |]
          [| h heap_a; i invo2; i invo1 |];
        (* record still sees the most significant object element *)
        check_record "S-2obj+H" ~heap:heap_b ~ctx:[| h heap_a; i invo1; i invo2 |]
          [| h heap_a |]);
    Alcotest.test_case "3obj+2H deep contexts" `Quick (fun () ->
        check_merge "3obj+2H" ~heap:heap_a ~hctx:[| h heap_b; h heap_a |] ~invo:invo1
          ~ctx:[| star; star; star |]
          [| h heap_a; h heap_b; h heap_a |];
        check_record "3obj+2H" ~heap:heap_a ~ctx:[| h heap_b; h heap_a; star |]
          [| h heap_b; h heap_a |]);
    Alcotest.test_case "A-2obj+H adapts Record to the context form" `Quick
      (fun () ->
        (* Allocation under a virtual-call context: receiver element. *)
        check_record "A-2obj+H" ~heap:heap_a ~ctx:[| h heap_b; h heap_a; star |]
          [| h heap_b |];
        (* Allocation under a static-call context (second element is an
           invocation site): the invocation site wins. *)
        check_record "A-2obj+H" ~heap:heap_a ~ctx:[| h heap_b; i invo1; star |]
          [| i invo1 |];
        check_merge_static "A-2obj+H" ~invo:invo2 ~ctx:[| h heap_a; i invo1; star |]
          [| h heap_a; i invo2; i invo1 |]);
    Alcotest.test_case "ablations produce their documented shapes" `Quick
      (fun () ->
        check_merge "X-2obj+IH" ~heap:heap_a ~hctx:[| i invo1 |] ~invo:invo2
          ~ctx:[| star; star; star |]
          [| h heap_a; i invo1; i invo2 |];
        check_record "X-2obj+IH" ~heap:heap_a ~ctx:[| h heap_b; star; i invo1 |]
          [| i invo1 |];
        check_merge "X-2obj+Hrev" ~heap:heap_a ~hctx:[| h heap_b |] ~invo:invo1
          ~ctx:[| star; star |]
          [| h heap_b; h heap_a |];
        check_merge "X-freemix" ~heap:heap_a ~hctx:[||] ~invo:invo1
          ~ctx:[| star; star |]
          [| i invo1; h heap_a |]);
    Alcotest.test_case "registry is consistent" `Quick (fun () ->
        Alcotest.(check int) "table1 has 12 analyses" 12 (List.length Strategies.table1);
        List.iter
          (fun (name, factory) ->
            let s = factory program in
            Alcotest.(check string) "name matches key" name s.Pta_context.Strategy.name)
          Strategies.all);
  ]
