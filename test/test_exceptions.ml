(** Behavioural tests for exception-flow analysis and its client:
    handler ordering, rethrow, inter-procedural propagation, and
    uncaught-at-entry reporting. *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Exceptions = Pta_clients.Exceptions

let run ?(strategy = "1obj") src =
  let program = Pta_frontend.Frontend.program_of_string ~file:"<t>" src in
  let factory = Option.get (Pta_context.Strategies.by_name strategy) in
  Solver.solve program (factory program)

let heap_types solver heaps =
  let program = Solver.program solver in
  heaps
  |> List.map (fun h ->
         Ir.Program.type_name program (Ir.Program.heap_info program h).Ir.heap_type)
  |> List.sort compare

(* Exceptions caught by the variable's handler, via its points-to set. *)
let catch_var_types solver meth_spec var_name =
  let program = Solver.program solver in
  let cls, name = meth_spec in
  let meth = Option.get (Ir.Program.find_meth program cls name 0) in
  let var = ref None in
  Ir.Program.iter_vars program (fun v info ->
      if Ir.Meth_id.equal info.Ir.var_owner meth && info.Ir.var_name = var_name
      then var := Some v);
  Pta_solver.Intset.fold
    (fun h acc ->
      Ir.Program.type_name program
        (Ir.Program.heap_info program (Ir.Heap_id.of_int h)).Ir.heap_type
      :: acc)
    (Solver.ci_var_points_to solver (Option.get !var))
    []
  |> List.sort compare

let handler_order_test () =
  let solver =
    run
      {|
      class Base {}
      class Mid extends Base {}
      class Leaf extends Mid {}
      class Main {
        static method main() {
          try {
            if (*) { throw new Leaf; }
            if (*) { throw new Mid; }
            throw new Base;
          } catch (Mid m) {
            var gotMid = m;
          } catch (Base b) {
            var gotBase = b;
          }
        }
      }
      |}
  in
  (* Mid and Leaf go to the first handler; Base only to the second. *)
  Alcotest.(check (list string))
    "first handler" [ "Leaf"; "Mid" ]
    (catch_var_types solver ("Main", "main") "gotMid");
  Alcotest.(check (list string))
    "second handler" [ "Base" ]
    (catch_var_types solver ("Main", "main") "gotBase")

let interprocedural_test () =
  let solver =
    run
      {|
      class Oops {}
      class Deep {
        method layer3() { throw new Oops; }
        method layer2() { return this.layer3(); }
        method layer1() { return this.layer2(); }
      }
      class Main {
        static method main() {
          var d = new Deep;
          try {
            var r = d.layer1();
          } catch (Oops o) {
            var caught = o;
          }
        }
      }
      |}
  in
  Alcotest.(check (list string))
    "propagates three frames" [ "Oops" ]
    (catch_var_types solver ("Main", "main") "caught");
  (* each layer reports the escaping exception *)
  let program = Solver.program solver in
  let escaping = Exceptions.escapes solver in
  let throwing_names =
    List.map
      (fun (e : Exceptions.escape) -> Ir.Program.meth_qualified_name program e.meth)
      escaping
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "every layer may throw"
    [ "Deep.layer1/0"; "Deep.layer2/0"; "Deep.layer3/0" ]
    throwing_names

let rethrow_test () =
  let solver =
    run
      {|
      class Low {}
      class Wrapped { field inner; }
      class Main {
        static method work() {
          try {
            throw new Low;
          } catch (Low l) {
            var w = new Wrapped;
            w.inner = l;
            throw w;
          }
        }
        static method main() {
          try {
            Main::work();
          } catch (Wrapped w) {
            var unwrapped = w.inner;
          }
        }
      }
      |}
  in
  Alcotest.(check (list string))
    "wrapped exception unwraps" [ "Low" ]
    (catch_var_types solver ("Main", "main") "unwrapped");
  let uncaught = Exceptions.uncaught_at_entries solver in
  Alcotest.(check (list string)) "nothing escapes main" [] (heap_types solver uncaught)

let uncaught_test () =
  let solver =
    run
      {|
      class Boom {}
      class Handled {}
      class Main {
        static method main() {
          try {
            if (*) { throw new Handled; }
          } catch (Handled h) {
            var ok = h;
          }
          if (*) { throw new Boom; }
        }
      }
      |}
  in
  Alcotest.(check (list string))
    "only Boom escapes" [ "Boom" ]
    (heap_types solver (Exceptions.uncaught_at_entries solver))

let catch_type_filter_test () =
  (* A handler must not capture incompatible exceptions even when they
     share a try block. *)
  let solver =
    run
      {|
      class ErrA {}
      class ErrB {}
      class Main {
        static method main() {
          try {
            if (*) { throw new ErrA; }
            throw new ErrB;
          } catch (ErrA a) {
            var onlyA = a;
          }
        }
      }
      |}
  in
  Alcotest.(check (list string))
    "handler sees only ErrA" [ "ErrA" ]
    (catch_var_types solver ("Main", "main") "onlyA");
  Alcotest.(check (list string))
    "ErrB escapes" [ "ErrB" ]
    (heap_types solver (Exceptions.uncaught_at_entries solver))

let context_sensitivity_test () =
  (* Exceptions respect context: under 1obj, the exception thrown by a
     method is distinguished per receiver... in the ThrowPointsTo
     contexts, though after ci-projection both sites appear.  Check that
     a handler around one receiver's call still sees both alloc sites
     merge only when contexts merge (insens). *)
  let src =
    {|
    class Err { field from; }
    class Thrower {
      method boom(x) {
        var e = new Err;
        e.from = x;
        throw e;
      }
    }
    class TagA {} class TagB {}
    class Main {
      static method main() {
        var t1 = new Thrower;
        var t2 = new Thrower;
        try { t1.boom(new TagA); } catch (Err e1) { var pay1 = e1.from; }
        try { t2.boom(new TagB); } catch (Err e2) { var pay2 = e2.from; }
      }
    }
    |}
  in
  (* Separating the two Err objects needs a heap context: the receivers
     t1/t2 distinguish boom's contexts, and Record stamps them onto the
     Err allocation. *)
  let precise = run ~strategy:"2obj+H" src in
  Alcotest.(check (list string))
    "2obj+H separates payloads" [ "TagA" ]
    (catch_var_types precise ("Main", "main") "pay1");
  (* 1call distinguishes boom's contexts but not the Err objects (no
     heap context), so the payload field conflates. *)
  let call1 = run ~strategy:"1call" src in
  Alcotest.(check (list string))
    "1call conflates payloads" [ "TagA"; "TagB" ]
    (catch_var_types call1 ("Main", "main") "pay1");
  let coarse = run ~strategy:"insens" src in
  Alcotest.(check (list string))
    "insens conflates payloads" [ "TagA"; "TagB" ]
    (catch_var_types coarse ("Main", "main") "pay2")

let tests =
  [
    Alcotest.test_case "handler order and subtyping" `Quick handler_order_test;
    Alcotest.test_case "inter-procedural propagation" `Quick interprocedural_test;
    Alcotest.test_case "catch, wrap and rethrow" `Quick rethrow_test;
    Alcotest.test_case "uncaught at entry" `Quick uncaught_test;
    Alcotest.test_case "handler type filter" `Quick catch_type_filter_test;
    Alcotest.test_case "exception context-sensitivity" `Quick context_sensitivity_test;
  ]
