(* The pointsto command-line driver.

   Subcommands:
     analyze    — run one analysis on MJ sources, print metrics
     compare    — run several analyses, print a metric table
     query      — points-to set of one variable
     casts      — may-fail casts with witness allocation sites
     callgraph  — context-insensitive call graph
     dump-ir    — parse, lower and pretty-print the IR
     gen        — emit a synthetic benchmark's MJ source
     strategies — list available analyses

   All subcommands share the exit-code contract enforced by
   [Pta_driver.Driver]: 1 = MJ parse/semantic error, 2 = unknown
   analysis (or benchmark), 3 = analysis timeout. *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Metrics = Pta_clients.Metrics
module Strategies = Pta_context.Strategies
module Driver = Pta_driver.Driver
module Observer = Pta_obs.Observer
module Json = Pta_obs.Json
module Run_stats = Pta_obs.Run_stats
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument definitions                                         *)
(* ------------------------------------------------------------------ *)

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"MJ source files.")

let analysis_arg =
  let doc = "Context-sensitivity strategy (see $(b,pointsto strategies))." in
  Arg.(value & opt string "S-2obj+H" & info [ "a"; "analysis" ] ~docv:"NAME" ~doc)

let no_stdlib_arg =
  let doc = "Do not link the bundled mini-JDK." in
  Arg.(value & flag & info [ "no-stdlib" ] ~doc)

let timeout_arg =
  let doc = "Abort the analysis after $(docv) seconds (exit code 3)." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let stats_json_arg =
  let doc =
    "Write run statistics (wall time, iterations, nodes, edges, contexts, \
     abstract objects, sensitive var-points-to size, per-phase timings) as \
     JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc = "Report solver progress on stderr while the analysis runs." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let profile_arg =
  let doc =
    "After the run, print the observability profile (counters and per-phase \
     timings) in human-readable form."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

(* Exit-code contract, rendered into every subcommand's man page. *)
let common_exits =
  [
    Cmd.Exit.info 1 ~doc:"on MJ lexical, syntax or semantic errors.";
    Cmd.Exit.info 2 ~doc:"on an unknown analysis or benchmark name.";
    Cmd.Exit.info 3 ~doc:"when the analysis exceeds its time budget.";
  ]
  @ Cmd.Exit.defaults

let handle = function Ok v -> v | Error e -> Driver.report_and_exit e

let progress_observer () =
  let iterations = ref 0 and nodes = ref 0 and edges = ref 0 in
  let report () =
    Printf.eprintf "\r[progress] %9d iterations %9d nodes %9d edges%!"
      !iterations !nodes !edges
  in
  Observer.make
    ~on_iteration:(fun () ->
      incr iterations;
      if !iterations land 0xFFFF = 0 then report ())
    ~on_node:(fun () -> incr nodes)
    ~on_edge:(fun () -> incr edges)
    ~on_phase:(fun name s ->
      Printf.eprintf "\r[progress] phase %-10s done in %.3fs%s\n%!" name s
        (String.make 24 ' '))
    ()

let config_of ?timeout_s ~progress () =
  let observer = if progress then progress_observer () else Observer.null in
  Solver.Config.make ?timeout_s ~observer ()

let sources_of files = List.map (fun f -> Driver.File f) files

(* Exits 123 (cmdliner's "indiscriminate error") on I/O failure rather
   than dying with an uncaught Sys_error. *)
let write_file path contents =
  match open_out path with
  | oc ->
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc contents)
  | exception Sys_error msg ->
    Printf.eprintf "pointsto: cannot write %s: %s\n" path msg;
    exit 123

let emit_stats ~stats_json ~profile (r : Driver.run) =
  match r.Driver.stats with
  | None -> ()
  | Some stats ->
    if profile then Format.printf "%a@." Run_stats.pp stats;
    Option.iter
      (fun path -> write_file path (Json.to_string (Run_stats.to_json stats)))
      stats_json

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let resolve_meth_var program meth_name var_name =
  let cls, rest =
    match String.index_opt meth_name '.' with
    | Some i ->
      ( String.sub meth_name 0 i,
        String.sub meth_name (i + 1) (String.length meth_name - i - 1) )
    | None ->
      Printf.eprintf "--method expects Class.meth/arity\n";
      exit 2
  in
  let mname, arity =
    match String.index_opt rest '/' with
    | Some i ->
      ( String.sub rest 0 i,
        int_of_string (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, 0)
  in
  let meth =
    match Ir.Program.find_meth program cls mname arity with
    | Some m -> m
    | None ->
      Printf.eprintf "no method %s.%s/%d\n" cls mname arity;
      exit 2
  in
  let var =
    let found = ref None in
    Ir.Program.iter_vars program (fun v info ->
        if Ir.Meth_id.equal info.Ir.var_owner meth
           && String.equal info.Ir.var_name var_name
        then found := Some v);
    match !found with
    | Some v -> v
    | None ->
      Printf.eprintf "no variable %s in %s\n" var_name meth_name;
      exit 2
  in
  (meth, var)

let analyze_cmd =
  let run files analysis no_stdlib timeout_s stats_json progress profile =
    let config = config_of ?timeout_s ~progress () in
    let _program, r =
      handle
        (Driver.load_and_run ~stdlib:(not no_stdlib) ~config
           ~collect_stats:(stats_json <> None || profile)
           ~analysis (sources_of files))
    in
    let metrics = Metrics.compute r.Driver.solver in
    Format.printf "analysis: %s (%s)@." analysis
      r.Driver.strategy.Pta_context.Strategy.description;
    Format.printf "%a@." Metrics.pp metrics;
    Format.printf "elapsed: %.3fs@." r.Driver.wall_time_s;
    emit_stats ~stats_json ~profile r
  in
  let doc = "Run one points-to analysis and print its metrics." in
  Cmd.v
    (Cmd.info "analyze" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ stats_json_arg $ progress_arg $ profile_arg)

let compare_cmd =
  let analyses_arg =
    let doc = "Comma-separated analyses to compare." in
    Arg.(
      value
      & opt (list string) [ "1call"; "1obj"; "SB-1obj"; "2obj+H"; "S-2obj+H"; "2type+H" ]
      & info [ "analyses" ] ~docv:"NAMES" ~doc)
  in
  let run files analyses no_stdlib timeout_s stats_json progress profile =
    let program = handle (Driver.load_program ~stdlib:(not no_stdlib) (sources_of files)) in
    let table =
      Pta_report.Table.create
        ~headers:
          [ "analysis"; "avg objs"; "cg edges"; "poly v-calls"; "may-fail casts";
            "time (s)"; "sensitive vpt" ]
    in
    let collect_stats = stats_json <> None || profile in
    let all_stats = ref [] in
    List.iter
      (fun name ->
        (* Resolution failures abort with exit 2 even mid-table. *)
        let (_ : Pta_context.Strategy.t) =
          handle (Driver.strategy_of_name program name)
        in
        let config = config_of ?timeout_s ~progress () in
        match Driver.run ~config ~collect_stats program ~analysis:name with
        | Ok r ->
          let m = Metrics.compute r.Driver.solver in
          (match r.Driver.stats with
          | Some stats ->
            if profile then Format.printf "%a@." Run_stats.pp stats;
            all_stats := Run_stats.to_json stats :: !all_stats
          | None -> ());
          Pta_report.Table.add_row table
            [
              name;
              Printf.sprintf "%.2f" m.Metrics.avg_objs_per_var;
              string_of_int m.Metrics.call_graph_edges;
              Printf.sprintf "%d/%d" m.Metrics.poly_vcalls m.Metrics.total_vcalls;
              Printf.sprintf "%d/%d" m.Metrics.may_fail_casts m.Metrics.total_casts;
              Printf.sprintf "%.3f" r.Driver.wall_time_s;
              string_of_int m.Metrics.sensitive_vpt;
            ]
        | Error (Driver.Timed_out { abort; _ }) ->
          all_stats :=
            Json.Obj
              [
                ("analysis", Json.String name);
                ("timed_out", Json.Bool true);
                ("elapsed_s", Json.Float abort.Pta_obs.Budget.elapsed_s);
                ("iterations", Json.Int abort.Pta_obs.Budget.iterations);
                ("nodes", Json.Int abort.Pta_obs.Budget.nodes);
              ]
            :: !all_stats;
          Pta_report.Table.add_row table [ name; "-"; "-"; "-"; "-"; "-"; "-" ]
        | Error e -> Driver.report_and_exit e)
      analyses;
    print_string (Pta_report.Table.render table);
    Option.iter
      (fun path ->
        write_file path (Json.to_string (Json.List (List.rev !all_stats))))
      stats_json
  in
  let doc = "Compare several analyses on the same program." in
  Cmd.v
    (Cmd.info "compare" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analyses_arg $ no_stdlib_arg $ timeout_arg
      $ stats_json_arg $ progress_arg $ profile_arg)

(* Load + run for the query-style subcommands: no stats machinery, but
   the same exit-code contract and optional timeout. *)
let load_and_solve ?timeout_s ~no_stdlib ~analysis files =
  let config = Solver.Config.make ?timeout_s () in
  let program, r =
    handle
      (Driver.load_and_run ~stdlib:(not no_stdlib) ~config ~analysis
         (sources_of files))
  in
  (program, r.Driver.solver)

let query_cmd =
  let meth_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "method" ] ~docv:"Class.meth/arity" ~doc:"Qualified method name.")
  in
  let var_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "var" ] ~docv:"NAME" ~doc:"Local variable name.")
  in
  let run files analysis no_stdlib timeout_s meth_name var_name =
    let program, solver = load_and_solve ?timeout_s ~no_stdlib ~analysis files in
    let _, var = resolve_meth_var program meth_name var_name in
    let heaps = Solver.ci_var_points_to solver var in
    Format.printf "%s may point to %d allocation site(s):@."
      (Ir.Program.var_qualified_name program var)
      (Intset.cardinal heaps);
    Intset.iter
      (fun h ->
        Format.printf "  %s@." (Ir.Program.heap_name program (Ir.Heap_id.of_int h)))
      heaps
  in
  let doc = "Print the points-to set of one variable." in
  Cmd.v
    (Cmd.info "query" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ meth_arg $ var_arg)

let casts_cmd =
  let run files analysis no_stdlib timeout_s =
    let program, solver = load_and_solve ?timeout_s ~no_stdlib ~analysis files in
    let sites = Pta_clients.Casts.analyze solver in
    List.iter
      (fun (site : Pta_clients.Casts.site) ->
        match site.verdict with
        | Pta_clients.Casts.Safe -> ()
        | Pta_clients.Casts.May_fail witnesses ->
          Format.printf "MAY FAIL: (%s) cast of %s in %s@."
            (Ir.Program.type_name program site.cast_type)
            (Ir.Program.var_info program site.source).Ir.var_name
            (Ir.Program.meth_qualified_name program site.in_meth);
          List.iteri
            (fun i h ->
              if i < 3 then
                Format.printf "    witness: %s@." (Ir.Program.heap_name program h))
            witnesses)
      sites;
    Format.printf "%d of %d casts may fail under %s@."
      (Pta_clients.Casts.may_fail_count sites)
      (List.length sites) analysis
  in
  let doc = "List casts the analysis cannot prove safe." in
  Cmd.v
    (Cmd.info "casts" ~doc ~exits:common_exits)
    Term.(const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg)

let callgraph_cmd =
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot on stdout.")
  in
  let run files analysis no_stdlib timeout_s dot =
    let program, solver = load_and_solve ?timeout_s ~no_stdlib ~analysis files in
    (* Method-level edges: caller method -> callee method. *)
    let edges = Hashtbl.create 256 in
    Ir.Program.iter_invos program (fun invo info ->
        Ir.Meth_id.Set.iter
          (fun target ->
            Hashtbl.replace edges
              ( Ir.Program.meth_qualified_name program info.Ir.invo_owner,
                Ir.Program.meth_qualified_name program target )
              ())
          (Solver.invo_targets solver invo));
    let sorted =
      Hashtbl.fold (fun e () acc -> e :: acc) edges [] |> List.sort compare
    in
    if dot then begin
      Format.printf "digraph callgraph {@.";
      List.iter
        (fun (src, dst) -> Format.printf "  %S -> %S;@." src dst)
        sorted;
      Format.printf "}@."
    end
    else begin
      List.iter (fun (src, dst) -> Format.printf "%s -> %s@." src dst) sorted;
      Format.printf "%d method-level call edges@." (List.length sorted)
    end
  in
  let doc = "Print the computed (context-insensitive) call graph." in
  Cmd.v
    (Cmd.info "callgraph" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ dot_arg)

let why_cmd =
  let meth_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "method" ] ~docv:"Class.meth/arity" ~doc:"Qualified method name.")
  in
  let var_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "var" ] ~docv:"NAME" ~doc:"Local variable name.")
  in
  let run files analysis no_stdlib timeout_s meth_name var_name =
    let program, solver = load_and_solve ?timeout_s ~no_stdlib ~analysis files in
    let meth, var = resolve_meth_var program meth_name var_name in
    ignore meth;
    let heaps = Solver.ci_var_points_to solver var in
    if Intset.is_empty heaps then
      Format.printf "%s points to nothing under %s@."
        (Ir.Program.var_qualified_name program var)
        analysis
    else
      Intset.iter
        (fun h ->
          let heap = Ir.Heap_id.of_int h in
          Format.printf "@[<v>%s may point to %s because:@,"
            (Ir.Program.var_qualified_name program var)
            (Ir.Program.heap_name program heap);
          (match Pta_clients.Provenance.explain solver ~var ~heap with
          | Some chain -> Pta_clients.Provenance.pp_chain Format.std_formatter chain
          | None -> Format.printf "  (no witness chain found)@,");
          Format.printf "@]@.")
        heaps
  in
  let doc = "Explain why a variable may point to each of its allocation sites." in
  Cmd.v
    (Cmd.info "why" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ meth_arg $ var_arg)

let stats_cmd =
  let run files analysis no_stdlib timeout_s =
    let program, solver = load_and_solve ?timeout_s ~no_stdlib ~analysis files in
    Format.printf "%a@."
      (Pta_clients.Stats.pp program)
      (Pta_clients.Stats.compute solver)
  in
  let doc =
    "Show where the context-sensitive facts come from (heaviest methods,      fattest variables, context histogram)."
  in
  Cmd.v
    (Cmd.info "stats" ~doc ~exits:common_exits)
    Term.(const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg)

let decompile_cmd =
  let run files no_stdlib =
    let program =
      handle (Driver.load_program ~stdlib:(not no_stdlib) (sources_of files))
    in
    print_string (Pta_frontend.To_mj.program_to_source program)
  in
  let doc = "Parse, lower, and print back equivalent MJ source." in
  Cmd.v
    (Cmd.info "decompile" ~doc ~exits:common_exits)
    Term.(const run $ files_arg $ no_stdlib_arg)

let exceptions_cmd =
  let run files analysis no_stdlib timeout_s =
    let program, solver = load_and_solve ?timeout_s ~no_stdlib ~analysis files in
    let escapes = Pta_clients.Exceptions.escapes solver in
    List.iter
      (fun (e : Pta_clients.Exceptions.escape) ->
        Format.printf "%s may leak:@."
          (Ir.Program.meth_qualified_name program e.meth);
        List.iter
          (fun h -> Format.printf "    %s@." (Ir.Program.heap_name program h))
          e.exceptions)
      escapes;
    let uncaught = Pta_clients.Exceptions.uncaught_at_entries solver in
    Format.printf "%d method(s) may leak exceptions; %d site(s) may escape main@."
      (List.length escapes) (List.length uncaught)
  in
  let doc = "Report which exceptions may escape which methods." in
  Cmd.v
    (Cmd.info "exceptions" ~doc ~exits:common_exits)
    Term.(const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg)

let dump_ir_cmd =
  let run files no_stdlib =
    let program =
      handle (Driver.load_program ~stdlib:(not no_stdlib) (sources_of files))
    in
    Format.printf "@[<v>%a@]@." Pta_ir.Ir_pp.pp_program program
  in
  let doc = "Parse, lower and pretty-print the IR." in
  Cmd.v
    (Cmd.info "dump-ir" ~doc ~exits:common_exits)
    Term.(const run $ files_arg $ no_stdlib_arg)

let gen_cmd =
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (or 'tiny').")
  in
  let run name =
    match Pta_workloads.Profile.by_name name with
    | None ->
      Printf.eprintf "unknown benchmark %S; available: tiny %s\n" name
        (String.concat " " Pta_workloads.Workloads.names);
      exit 2
    | Some profile -> print_string (Pta_workloads.Gen.generate profile)
  in
  let doc = "Emit a synthetic benchmark's MJ source on stdout." in
  Cmd.v (Cmd.info "gen" ~doc ~exits:common_exits) Term.(const run $ bench_arg)

let strategies_cmd =
  let run () =
    List.iter
      (fun (name, factory) ->
        (* A strategy's description does not depend on the program; use a
           trivial one to materialize it. *)
        let program =
          Pta_frontend.Frontend.program_of_string "class Main { static method main() { } }"
        in
        let s = factory program in
        Printf.printf "%-10s %s\n" name s.Pta_context.Strategy.description)
      Strategies.all
  in
  let doc = "List available context-sensitivity strategies." in
  Cmd.v
    (Cmd.info "strategies" ~doc ~exits:common_exits)
    Term.(const run $ const ())

let main_cmd =
  let doc = "Hybrid context-sensitive points-to analysis for MJ programs" in
  let info = Cmd.info "pointsto" ~version:"1.0.0" ~doc ~exits:common_exits in
  Cmd.group info
    [
      analyze_cmd; compare_cmd; query_cmd; why_cmd; casts_cmd; exceptions_cmd;
      callgraph_cmd; stats_cmd; dump_ir_cmd; decompile_cmd; gen_cmd;
      strategies_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
