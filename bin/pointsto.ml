(* The pointsto command-line driver.

   Subcommands:
     analyze    — run one analysis on MJ sources, print metrics
     compare    — run several analyses, print a metric table
     check      — run the points-to-powered checkers, report diagnostics
     taint      — source-to-sink taint flows, per strategy or in detail
     query      — points-to set of one variable
     casts      — may-fail casts with witness allocation sites
     callgraph  — context-insensitive call graph
     dump-ir    — parse, lower and pretty-print the IR
     gen        — emit a synthetic benchmark's MJ source
     strategies — list available analyses
     metrics    — run one analysis, dump the metric registry as OpenMetrics
     heapmap    — run one analysis, print the reachable-heap census
                  (per-component retained/unshared words, set-sharing
                  factor), or gate it against a blessed census JSON
     bench      — perf-trajectory tooling over the bench-history ledger:
                  history append/list/show, trend (report + --check gate),
                  bisect (first bad ledger record, optional git handoff)
     version    — print the build stamp (commit, OCaml version, profile)

   All subcommands share the exit-code contract enforced by
   [Pta_driver.Driver]: 1 = MJ parse/semantic error, 2 = unknown
   analysis (or benchmark), 3 = analysis timeout.  [check] adds
   4 = at least one error-severity diagnostic. *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Metrics = Pta_clients.Metrics
module Strategies = Pta_context.Strategies
module Driver = Pta_driver.Driver
module Observer = Pta_obs.Observer
module Json = Pta_obs.Json
module Run_stats = Pta_obs.Run_stats
module Trace = Pta_obs.Trace
module Census = Pta_obs.Census
module Registry = Pta_metrics.Registry
module Version = Pta_version.Version
module Snapshot = Pta_report.Bench_snapshot
module Trend_page = Pta_report.Trend_page
module Hrecord = Pta_bench_history.Record
module Hledger = Pta_bench_history.Ledger
module Htrend = Pta_bench_history.Trend
module Hbisect = Pta_bench_history.Bisect
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument definitions                                         *)
(* ------------------------------------------------------------------ *)

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"MJ source files.")

let analysis_arg =
  let doc =
    "Context-sensitivity strategy: a preset name such as $(b,S-2obj+H) (see \
     $(b,pointsto strategies) for the list) or a strategy-algebra expression \
     such as $(b,selective(obj 2 1)), $(b,uniform(type 2 1)), \
     $(b,cs(insens)) or $(b,adaptive(obj 2 1, obj 1, 3))."
  in
  Arg.(
    value
    & opt string "S-2obj+H"
    & info [ "a"; "analysis"; "strategy" ] ~docv:"STRATEGY" ~doc)

let no_stdlib_arg =
  let doc = "Do not link the bundled mini-JDK." in
  Arg.(value & flag & info [ "no-stdlib" ] ~doc)

let timeout_arg =
  let doc = "Abort the analysis after $(docv) seconds (exit code 3)." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Drain the solver worklist with $(docv) domains (default 1, the \
     sequential fixpoint).  The parallel drain partitions the supergraph by \
     SCC-condensation region, steals batches between per-domain priority \
     worklists, and exchanges cross-partition deltas through mailboxes; \
     results are fact-identical to the sequential solver at every domain \
     count.  On runtimes without multicore support (OCaml 4.x) any value \
     degrades gracefully to sequential."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let stats_json_arg =
  let doc =
    "Write run statistics (wall time, iterations, nodes, edges, contexts, \
     abstract objects, sensitive var-points-to size, per-phase timings) as \
     JSON to $(docv), or to stdout if $(docv) is $(b,-) (the human-readable \
     report then goes to stderr)."
  in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record a rule/edge-level execution trace and write it as Chrome \
     trace-event JSON to $(docv), or to stdout if $(docv) is $(b,-) (the \
     human-readable report then goes to stderr).  Open the file in Perfetto \
     (ui.perfetto.dev) or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc = "Report solver progress on stderr while the analysis runs." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let profile_arg =
  let doc =
    "After the run, print the observability profile (counters and per-phase \
     timings) in human-readable form."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

(* Exit-code contract, rendered into every subcommand's man page. *)
let common_exits =
  [
    Cmd.Exit.info 1 ~doc:"on MJ lexical, syntax or semantic errors.";
    Cmd.Exit.info 2 ~doc:"on an unknown analysis or benchmark name.";
    Cmd.Exit.info 3 ~doc:"when the analysis exceeds its time budget.";
  ]
  @ Cmd.Exit.defaults

(* [check] extends the shared contract with its findings signal. *)
let check_exits =
  Cmd.Exit.info 4 ~doc:"when any error-severity diagnostic is reported."
  :: common_exits

let handle = function Ok v -> v | Error e -> Driver.report_and_exit e

let progress_observer () =
  let iterations = ref 0 and nodes = ref 0 and edges = ref 0 in
  let report () =
    Printf.eprintf "\r[progress] %9d iterations %9d nodes %9d edges%!"
      !iterations !nodes !edges
  in
  Observer.make
    ~on_iteration:(fun () ->
      incr iterations;
      if !iterations land 0xFFFF = 0 then report ())
    ~on_node:(fun () -> incr nodes)
    ~on_edge:(fun () -> incr edges)
    ~on_phase:(fun name s ->
      Printf.eprintf "\r[progress] phase %-10s done in %.3fs%s\n%!" name s
        (String.make 24 ' '))
    ()

let config_of ?timeout_s ?jobs ?trace ?metrics ~progress () =
  let observer = if progress then progress_observer () else Observer.null in
  Solver.Config.make ?timeout_s ?jobs ~observer ?trace ?metrics ()

(* Stats collection implies a live metric registry, so [--stats-json]
   documents carry the [memory] and [metrics] blocks. *)
let metrics_for ~collect_stats ~analysis =
  if collect_stats then Registry.create ~labels:[ ("analysis", analysis) ] ()
  else Registry.null

let sources_of files = List.map (fun f -> Driver.File f) files

(* Exits 123 (cmdliner's "indiscriminate error") on I/O failure rather
   than dying with an uncaught Sys_error. *)
let write_file path contents =
  match open_out path with
  | oc ->
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc contents)
  | exception Sys_error msg ->
    Printf.eprintf "pointsto: cannot write %s: %s\n" path msg;
    exit 123

(* "-" means stdout, so machine output can be piped; the callers then
   route the human-readable report to stderr to keep the two streams
   from interleaving. *)
let write_output path contents =
  if String.equal path "-" then (print_string contents; flush stdout)
  else write_file path contents

let stdout_dest = function Some "-" -> true | _ -> false

(* The human-readable report goes to stdout unless some machine output
   claimed it. *)
let report_ppf ~machine_on_stdout =
  if machine_on_stdout then Format.err_formatter else Format.std_formatter

let trace_sink = function
  | None -> Trace.null
  | Some _ -> Trace.create ()

let emit_trace trace_file trace =
  Option.iter
    (fun path -> write_output path (Json.to_string (Trace.to_chrome_json trace)))
    trace_file

(* Every machine-readable stats document carries the build stamp, so a
   recorded number can be traced back to the binary that produced it. *)
let stamp_build = function
  | Json.Obj fields -> Json.Obj (fields @ [ ("pointsto", Version.to_json ()) ])
  | j -> j

let stats_doc stats = stamp_build (Run_stats.to_json stats)

let emit_stats ~ppf ~stats_json ~profile (r : Driver.run) =
  match r.Driver.stats with
  | None -> ()
  | Some stats ->
    if profile then Format.fprintf ppf "%a@." Run_stats.pp stats;
    Option.iter
      (fun path -> write_output path (Json.to_string (stats_doc stats)))
      stats_json

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let resolve_meth_var program meth_name var_name =
  let cls, rest =
    match String.index_opt meth_name '.' with
    | Some i ->
      ( String.sub meth_name 0 i,
        String.sub meth_name (i + 1) (String.length meth_name - i - 1) )
    | None ->
      Printf.eprintf "--method expects Class.meth/arity\n";
      exit 2
  in
  let mname, arity =
    match String.index_opt rest '/' with
    | Some i ->
      ( String.sub rest 0 i,
        int_of_string (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, 0)
  in
  let meth =
    match Ir.Program.find_meth program cls mname arity with
    | Some m -> m
    | None ->
      Printf.eprintf "no method %s.%s/%d\n" cls mname arity;
      exit 2
  in
  let var =
    let found = ref None in
    Ir.Program.iter_vars program (fun v info ->
        if Ir.Meth_id.equal info.Ir.var_owner meth
           && String.equal info.Ir.var_name var_name
        then found := Some v);
    match !found with
    | Some v -> v
    | None ->
      Printf.eprintf "no variable %s in %s\n" var_name meth_name;
      exit 2
  in
  (meth, var)

let analyze_cmd =
  let run files analysis no_stdlib timeout_s jobs stats_json trace_file
      progress profile =
    let trace = trace_sink trace_file in
    let collect_stats = stats_json <> None || profile in
    let metrics = metrics_for ~collect_stats ~analysis in
    let config = config_of ?timeout_s ~jobs ~trace ~metrics ~progress () in
    let ppf =
      report_ppf
        ~machine_on_stdout:(stdout_dest stats_json || stdout_dest trace_file)
    in
    let _program, r =
      handle
        (Driver.load_and_run ~stdlib:(not no_stdlib) ~config ~collect_stats
           ~analysis (sources_of files))
    in
    let metrics = Metrics.compute r.Driver.solver in
    Format.fprintf ppf "analysis: %s (%s)@." analysis
      r.Driver.strategy.Pta_context.Strategy.description;
    Format.fprintf ppf "%a@." Metrics.pp metrics;
    Format.fprintf ppf "elapsed: %.3fs@." r.Driver.wall_time_s;
    emit_stats ~ppf ~stats_json ~profile r;
    emit_trace trace_file trace
  in
  let doc = "Run one points-to analysis and print its metrics." in
  Cmd.v
    (Cmd.info "analyze" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ jobs_arg $ stats_json_arg $ trace_arg $ progress_arg $ profile_arg)

let compare_cmd =
  let analyses_arg =
    let doc = "Comma-separated analyses to compare." in
    Arg.(
      value
      & opt (list string) [ "1call"; "1obj"; "SB-1obj"; "2obj+H"; "S-2obj+H"; "2type+H" ]
      & info [ "analyses" ] ~docv:"NAMES" ~doc)
  in
  let run files analyses no_stdlib timeout_s jobs stats_json trace_file
      progress profile =
    let program = handle (Driver.load_program ~stdlib:(not no_stdlib) (sources_of files)) in
    (* One shared sink: the trace holds every analysis back to back. *)
    let trace = trace_sink trace_file in
    let ppf =
      report_ppf
        ~machine_on_stdout:(stdout_dest stats_json || stdout_dest trace_file)
    in
    let table =
      Pta_report.Table.create
        ~headers:
          [ "analysis"; "avg objs"; "cg edges"; "poly v-calls"; "may-fail casts";
            "time (s)"; "sensitive vpt" ]
    in
    let collect_stats = stats_json <> None || profile in
    let all_stats = ref [] in
    List.iter
      (fun name ->
        (* Resolution failures abort with exit 2 even mid-table. *)
        let (_ : Pta_context.Strategy.t) =
          handle (Driver.strategy_of_name program name)
        in
        let metrics = metrics_for ~collect_stats ~analysis:name in
        let config = config_of ?timeout_s ~jobs ~trace ~metrics ~progress () in
        match Driver.run ~config ~collect_stats program ~analysis:name with
        | Ok r ->
          let m = Metrics.compute r.Driver.solver in
          (match r.Driver.stats with
          | Some stats ->
            if profile then Format.fprintf ppf "%a@." Run_stats.pp stats;
            all_stats := stats_doc stats :: !all_stats
          | None -> ());
          Pta_report.Table.add_row table
            [
              name;
              Printf.sprintf "%.2f" m.Metrics.avg_objs_per_var;
              string_of_int m.Metrics.call_graph_edges;
              Printf.sprintf "%d/%d" m.Metrics.poly_vcalls m.Metrics.total_vcalls;
              Printf.sprintf "%d/%d" m.Metrics.may_fail_casts m.Metrics.total_casts;
              Printf.sprintf "%.3f" r.Driver.wall_time_s;
              string_of_int m.Metrics.sensitive_vpt;
            ]
        | Error (Driver.Timed_out { abort; _ }) ->
          all_stats :=
            Json.Obj
              [
                ("analysis", Json.String name);
                ("timed_out", Json.Bool true);
                ("elapsed_s", Json.Float abort.Pta_obs.Budget.elapsed_s);
                ("iterations", Json.Int abort.Pta_obs.Budget.iterations);
                ("nodes", Json.Int abort.Pta_obs.Budget.nodes);
              ]
            :: !all_stats;
          Pta_report.Table.add_row table [ name; "-"; "-"; "-"; "-"; "-"; "-" ]
        | Error e -> Driver.report_and_exit e)
      analyses;
    Format.fprintf ppf "%s@?" (Pta_report.Table.render table);
    Option.iter
      (fun path ->
        write_output path (Json.to_string (Json.List (List.rev !all_stats))))
      stats_json;
    emit_trace trace_file trace
  in
  let doc = "Compare several analyses on the same program." in
  Cmd.v
    (Cmd.info "compare" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analyses_arg $ no_stdlib_arg $ timeout_arg
      $ jobs_arg $ stats_json_arg $ trace_arg $ progress_arg $ profile_arg)

(* Load + run for the query-style subcommands: no stats machinery, but
   the same exit-code contract, optional timeout and optional trace.
   The trace file is written before returning, so a "-" destination has
   stdout to itself; the returned formatter is where the report goes. *)
let load_and_solve ?timeout_s ?jobs ?(trace_file = None) ~no_stdlib ~analysis
    files =
  let trace = trace_sink trace_file in
  let config = Solver.Config.make ?timeout_s ?jobs ~trace () in
  let program, r =
    handle
      (Driver.load_and_run ~stdlib:(not no_stdlib) ~config ~analysis
         (sources_of files))
  in
  emit_trace trace_file trace;
  let ppf = report_ppf ~machine_on_stdout:(stdout_dest trace_file) in
  (program, r.Driver.solver, ppf)

let query_cmd =
  let meth_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "method" ] ~docv:"Class.meth/arity" ~doc:"Qualified method name.")
  in
  let var_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "var" ] ~docv:"NAME" ~doc:"Local variable name.")
  in
  let run files analysis no_stdlib timeout_s trace_file meth_name var_name =
    let program, solver, ppf =
      load_and_solve ?timeout_s ~trace_file ~no_stdlib ~analysis files
    in
    let _, var = resolve_meth_var program meth_name var_name in
    let heaps = Solver.ci_var_points_to solver var in
    Format.fprintf ppf "%s may point to %d allocation site(s):@."
      (Ir.Program.var_qualified_name program var)
      (Intset.cardinal heaps);
    Intset.iter
      (fun h ->
        Format.fprintf ppf "  %s@."
          (Ir.Program.heap_name program (Ir.Heap_id.of_int h)))
      heaps
  in
  let doc = "Print the points-to set of one variable." in
  Cmd.v
    (Cmd.info "query" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ trace_arg $ meth_arg $ var_arg)

let casts_cmd =
  let run files analysis no_stdlib timeout_s trace_file =
    let program, solver, ppf =
      load_and_solve ?timeout_s ~trace_file ~no_stdlib ~analysis files
    in
    let sites = Pta_clients.Casts.analyze solver in
    List.iter
      (fun (site : Pta_clients.Casts.site) ->
        match site.verdict with
        | Pta_clients.Casts.Safe -> ()
        | Pta_clients.Casts.May_fail witnesses ->
          Format.fprintf ppf "MAY FAIL: (%s) cast of %s in %s@."
            (Ir.Program.type_name program site.cast_type)
            (Ir.Program.var_info program site.source).Ir.var_name
            (Ir.Program.meth_qualified_name program site.in_meth);
          List.iteri
            (fun i h ->
              if i < 3 then
                Format.fprintf ppf "    witness: %s@."
                  (Ir.Program.heap_name program h))
            witnesses)
      sites;
    Format.fprintf ppf "%d of %d casts may fail under %s@."
      (Pta_clients.Casts.may_fail_count sites)
      (List.length sites) analysis
  in
  let doc = "List casts the analysis cannot prove safe." in
  Cmd.v
    (Cmd.info "casts" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ trace_arg)

(* Shared by check and taint: load a spec file, exiting with the CLI
   usage code on parse errors so scripts can distinguish a bad spec from
   analysis findings. *)
let taint_spec_arg =
  let doc =
    "Taint specification file: one directive per line — $(b,source GLOB \
     ret), $(b,source GLOB param I), $(b,sink GLOB arg I|*), $(b,sanitizer \
     GLOB) — with $(b,#) comments.  Globs match qualified method names \
     (Class.meth/arity) as in per-method strategy dispatch."
  in
  Arg.(value & opt (some string) None & info [ "taint-spec" ] ~docv:"FILE" ~doc)

let load_taint_spec = function
  | None -> None
  | Some path -> (
    match Pta_taint.Spec.load path with
    | Ok entries -> Some entries
    | Error msg ->
      Printf.eprintf "pointsto: %s: %s\n" path msg;
      exit 2)

let print_checker_listing () =
  List.iter
    (fun (i : Pta_checkers.Checkers.info) ->
      Printf.printf "%-22s %-8s %s\n" i.code
        (Pta_checkers.Diagnostic.severity_to_string i.severity)
        i.summary)
    Pta_checkers.Checkers.all

let unknown_checker_exit code suggestions available =
  Printf.eprintf "pointsto: unknown checker %S" code;
  (match suggestions with
  | [] -> ()
  | [ s ] -> Printf.eprintf " (did you mean %s?)" s
  | ss -> Printf.eprintf " (did you mean %s?)" (String.concat " or " ss));
  Printf.eprintf "\navailable checkers: %s\n" (String.concat ", " available);
  Printf.eprintf "see `pointsto check --checkers list'\n";
  exit 2

let check_cmd =
  let format_arg =
    let doc =
      "Report format: $(b,text) (gcc-style file:line:col diagnostics) or \
       $(b,sarif) (SARIF 2.1.0 JSON)."
    in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("sarif", `Sarif) ]) `Text
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let output_arg =
    let doc = "Write the report to $(docv) instead of stdout." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let checkers_arg =
    let doc =
      "Comma-separated checkers to run (default: all), or $(b,list) to \
       print the available checkers and exit.  See the CHECKERS section."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "checkers" ] ~docv:"NAMES" ~doc)
  in
  let include_stdlib_arg =
    let doc =
      "Also report diagnostics located in the bundled mini-JDK (filtered out \
       by default)."
    in
    Arg.(value & flag & info [ "include-stdlib" ] ~doc)
  in
  let run files analysis no_stdlib timeout_s jobs checkers taint_spec format
      output include_stdlib =
    (match checkers with
    | Some [ "list" ] ->
      print_checker_listing ();
      exit 0
    | _ -> ());
    if files = [] then begin
      Printf.eprintf "pointsto: check: no MJ source files given\n";
      exit 124
    end;
    let program, solver, _ppf =
      load_and_solve ?timeout_s ~jobs ~no_stdlib ~analysis files
    in
    let taint =
      match load_taint_spec taint_spec with
      | None -> None
      | Some entries ->
        let spec = Pta_taint.Spec.compile program entries in
        Some (Pta_taint.Taint.summary (Pta_taint.Taint.analyze solver spec))
    in
    let results = Pta_checkers.Results.of_solver ?taint solver in
    let diags =
      match Pta_checkers.Checkers.run ?only:checkers results with
      | diags -> diags
      | exception Pta_checkers.Checkers.Unknown_checker
          { code; suggestions; available } ->
        unknown_checker_exit code suggestions available
    in
    let in_stdlib (d : Pta_checkers.Diagnostic.t) =
      match d.span with
      | Some span ->
        String.equal span.Pta_ir.Srcloc.left.file Pta_mjdk.Mjdk.file_name
      | None -> false
    in
    let diags =
      if include_stdlib then diags else List.filter (fun d -> not (in_stdlib d)) diags
    in
    let rendered =
      match format with
      | `Text ->
        Format.asprintf "%a" Pta_checkers.Diagnostic.pp_report diags
      | `Sarif -> Pta_checkers.Sarif.to_string ~tool_version:"1.0.0" diags
    in
    write_output output rendered;
    if Pta_checkers.Diagnostic.has_errors diags then exit 4
  in
  let files_opt_arg =
    (* Optional here (unlike other subcommands) so `--checkers list`
       works without sources; a missing FILE is rejected in [run]. *)
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"MJ source files.")
  in
  let doc =
    "Run the points-to-powered checkers (may-fail-cast, null-dereference, \
     dead-method, monomorphic-call-site, and — given $(b,--taint-spec) — \
     tainted-sink-argument, sanitizer-bypassed) and report diagnostics."
  in
  let man =
    [
      `S "CHECKERS";
      `Blocks
        (List.concat_map
           (fun (i : Pta_checkers.Checkers.info) ->
             [
               `I
                 ( Printf.sprintf "$(b,%s) (%s)" i.code
                     (Pta_checkers.Diagnostic.severity_to_string i.severity),
                   i.help );
             ])
           Pta_checkers.Checkers.all);
      `S "TAINT";
      `P
        "The two taint checkers run only when $(b,--taint-spec) supplies a \
         specification; without one they report nothing.  The taint pass \
         runs context-sensitively under the same strategy as the checkers' \
         points-to state, so a more precise strategy reports fewer spurious \
         flows.  See $(b,pointsto taint) for per-strategy flow counts.";
    ]
  in
  Cmd.v
    (Cmd.info "check" ~doc ~man ~exits:check_exits)
    Term.(
      const run $ files_opt_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ jobs_arg $ checkers_arg $ taint_spec_arg $ format_arg $ output_arg
      $ include_stdlib_arg)

let taint_cmd =
  let all_arg =
    let doc =
      "Run every strategy preset and print one flow-count line per \
       strategy (the default when $(b,-a) is not given)."
    in
    Arg.(value & flag & info [ "all-strategies" ] ~doc)
  in
  let run files analysis_opt no_stdlib timeout_s trace_file taint_spec _all =
    let entries =
      match load_taint_spec taint_spec with
      | Some entries -> entries
      | None -> Pta_taint.Spec.default
    in
    match analysis_opt with
    | Some analysis ->
      (* One strategy: every flow, with its provenance chain. *)
      let program, solver, ppf =
        load_and_solve ?timeout_s ~trace_file ~no_stdlib ~analysis files
      in
      let spec = Pta_taint.Spec.compile program entries in
      let taint = Pta_taint.Taint.analyze solver spec in
      let flows = Pta_taint.Taint.flows taint in
      Format.fprintf ppf "%d source(s), %d sink method(s): %d flow(s) under %s@."
        (Pta_taint.Spec.n_sources spec)
        (List.length (Pta_taint.Spec.sink_meths spec))
        (List.length flows) analysis;
      List.iter
        (fun (f : Pta_taint.Taint.flow) ->
          Format.fprintf ppf "@.FLOW %s -> argument %d of %s@."
            (Pta_taint.Spec.label_name spec f.f_label)
            f.f_pos
            (Ir.Program.invo_name program f.f_invo);
          List.iter
            (fun line -> Format.fprintf ppf "    %s@." line)
            (Pta_taint.Taint.explain_flow taint f))
        flows
    | None ->
      (* The per-strategy precision column: flow counts across every
         preset, so hybrids' spurious-flow advantage is visible. *)
      let program, _r =
        handle
          (Driver.load_and_run ~stdlib:(not no_stdlib)
             ~config:(Solver.Config.make ?timeout_s ())
             ~analysis:"insens" (sources_of files))
      in
      let spec = Pta_taint.Spec.compile program entries in
      let ppf = report_ppf ~machine_on_stdout:false in
      Format.fprintf ppf "%d source(s), %d sink method(s)@."
        (Pta_taint.Spec.n_sources spec)
        (List.length (Pta_taint.Spec.sink_meths spec));
      List.iter
        (fun (name, factory) ->
          let strategy = factory program in
          match
            Solver.solve_outcome
              ~config:(Solver.Config.make ?timeout_s ())
              program strategy
          with
          | Solver.Aborted _ -> Format.fprintf ppf "%-12s -@." name
          | Solver.Complete solver ->
            let n =
              Pta_taint.Taint.n_flows (Pta_taint.Taint.analyze solver spec)
            in
            Format.fprintf ppf "%-12s %d flow(s)@." name n)
        Strategies.all
  in
  let analysis_opt_arg =
    let doc =
      "Report each flow under this one strategy, with provenance chains.  \
       Omit it to print flow counts for every preset instead."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "a"; "analysis" ] ~docv:"NAME" ~doc)
  in
  let doc =
    "Context-sensitive taint analysis: source-to-sink flow counts per \
     strategy, or every flow with provenance under one strategy."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the taint pass on top of the solved points-to state: sources \
         label values, labels propagate through copies, casts, the heap \
         (context-sensitively, keyed by the strategy's heap abstraction) \
         and calls, sanitizer calls cut them, and a label reaching a \
         sensitive sink argument is a flow.  Without $(b,--taint-spec), the \
         built-in convention ($(b,*.fetch/*) returns taint, $(b,*.leak/*) \
         sinks every argument, $(b,*.scrub/*) sanitizes) applies.";
      `P
        "Flow identity is (source label, invocation site, argument \
         position), so counts are comparable across strategies: every \
         strategy derives at least the true flows, and more precise \
         strategies — the paper's hybrids in particular — report fewer \
         spurious ones.";
    ]
  in
  Cmd.v
    (Cmd.info "taint" ~doc ~man ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_opt_arg $ no_stdlib_arg $ timeout_arg
      $ trace_arg $ taint_spec_arg $ all_arg)

let callgraph_cmd =
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot on stdout.")
  in
  let run files analysis no_stdlib timeout_s trace_file dot =
    let program, solver, ppf =
      load_and_solve ?timeout_s ~trace_file ~no_stdlib ~analysis files
    in
    (* Method-level edges: caller method -> callee method. *)
    let edges = Hashtbl.create 256 in
    Ir.Program.iter_invos program (fun invo info ->
        Ir.Meth_id.Set.iter
          (fun target ->
            Hashtbl.replace edges
              ( Ir.Program.meth_qualified_name program info.Ir.invo_owner,
                Ir.Program.meth_qualified_name program target )
              ())
          (Solver.invo_targets solver invo));
    let sorted =
      Hashtbl.fold (fun e () acc -> e :: acc) edges [] |> List.sort compare
    in
    if dot then begin
      Format.fprintf ppf "digraph callgraph {@.";
      List.iter
        (fun (src, dst) -> Format.fprintf ppf "  %S -> %S;@." src dst)
        sorted;
      Format.fprintf ppf "}@."
    end
    else begin
      List.iter (fun (src, dst) -> Format.fprintf ppf "%s -> %s@." src dst) sorted;
      Format.fprintf ppf "%d method-level call edges@." (List.length sorted)
    end
  in
  let doc = "Print the computed (context-insensitive) call graph." in
  Cmd.v
    (Cmd.info "callgraph" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ trace_arg $ dot_arg)

let why_cmd =
  let meth_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "method" ] ~docv:"Class.meth/arity" ~doc:"Qualified method name.")
  in
  let var_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "var" ] ~docv:"NAME" ~doc:"Local variable name.")
  in
  let run files analysis no_stdlib timeout_s trace_file meth_name var_name =
    let program, solver, ppf =
      load_and_solve ?timeout_s ~trace_file ~no_stdlib ~analysis files
    in
    let meth, var = resolve_meth_var program meth_name var_name in
    ignore meth;
    let heaps = Solver.ci_var_points_to solver var in
    if Intset.is_empty heaps then
      Format.fprintf ppf "%s points to nothing under %s@."
        (Ir.Program.var_qualified_name program var)
        analysis
    else
      Intset.iter
        (fun h ->
          let heap = Ir.Heap_id.of_int h in
          Format.fprintf ppf "@[<v>%s may point to %s because:@,"
            (Ir.Program.var_qualified_name program var)
            (Ir.Program.heap_name program heap);
          (match Pta_clients.Provenance.explain solver ~var ~heap with
          | Some chain -> Pta_clients.Provenance.pp_chain ppf chain
          | None -> Format.fprintf ppf "  (no witness chain found)@,");
          Format.fprintf ppf "@]@.")
        heaps
  in
  let doc = "Explain why a variable may point to each of its allocation sites." in
  Cmd.v
    (Cmd.info "why" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ trace_arg $ meth_arg $ var_arg)

let stats_cmd =
  let run files analysis no_stdlib timeout_s trace_file =
    let program, solver, ppf =
      load_and_solve ?timeout_s ~trace_file ~no_stdlib ~analysis files
    in
    Format.fprintf ppf "%a@."
      (Pta_clients.Stats.pp program)
      (Pta_clients.Stats.compute solver)
  in
  let doc =
    "Show where the context-sensitive facts come from (heaviest methods,      fattest variables, context histogram)."
  in
  Cmd.v
    (Cmd.info "stats" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ trace_arg)

let profile_cmd =
  let top_arg =
    let doc = "Show the $(docv) hottest rows." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)
  in
  let datalog_arg =
    let doc =
      "Profile the reference Datalog implementation (per-rule firings) \
       instead of the native solver (per-edge-kind propagation)."
    in
    Arg.(value & flag & info [ "datalog" ] ~doc)
  in
  let sort_arg =
    let doc = "Order rows by cumulative $(b,time) or $(b,alloc)ation." in
    let sort_conv =
      Arg.conv
        ( (fun s ->
            match Pta_report.Hotspots.sort_of_string s with
            | Ok v -> Ok v
            | Error e -> Error (`Msg e)),
          fun ppf s ->
            Format.pp_print_string ppf
              (match s with
              | Pta_report.Hotspots.By_time -> "time"
              | Pta_report.Hotspots.By_alloc -> "alloc") )
    in
    Arg.(
      value
      & opt sort_conv Pta_report.Hotspots.By_time
      & info [ "sort" ] ~docv:"KEY" ~doc)
  in
  let run files analysis no_stdlib timeout_s trace_file top datalog sort =
    (* Always trace — the profile is read off the sink's aggregates —
       but only write the event timeline when --trace asks for it.  GC
       accounting is on so the alloc column (and the alloc sort) have
       something to show. *)
    let trace = Trace.create ~alloc:true () in
    let ppf = report_ppf ~machine_on_stdout:(stdout_dest trace_file) in
    let wall_time_s =
      let t0 = Unix.gettimeofday () in
      (if datalog then begin
         let program =
           handle (Driver.load_program ~stdlib:(not no_stdlib) (sources_of files))
         in
         let strategy = handle (Driver.strategy_of_name program analysis) in
         let budget = Pta_obs.Budget.of_seconds_opt timeout_s in
         match Pta_refimpl.Refimpl.run ~budget ~trace program strategy with
         | (_ : Pta_refimpl.Refimpl.t) -> ()
         | exception Pta_obs.Budget.Exhausted abort ->
           Driver.report_and_exit (Driver.Timed_out { analysis; abort })
       end
       else
         let config = Solver.Config.make ?timeout_s ~trace () in
         ignore
           (handle
              (Driver.load_and_run ~stdlib:(not no_stdlib) ~config ~analysis
                 (sources_of files))));
      Unix.gettimeofday () -. t0
    in
    let cat = if datalog then "rule" else "solver" in
    let rows =
      List.filter_map
        (fun (s : Trace.stat) ->
          if String.equal s.stat_cat cat then
            Some
              {
                Pta_report.Hotspots.name = s.stat_name;
                events = s.events;
                delta = s.delta;
                seconds = s.seconds;
                alloc_words = Trace.stat_alloc_words s;
              }
          else None)
        (Trace.profile trace)
    in
    let title = if datalog then "rule" else "edge kind" in
    Format.fprintf ppf "analysis: %s (%s)@." analysis
      (if datalog then "reference Datalog engine" else "native solver");
    Format.fprintf ppf "%s" (Pta_report.Hotspots.render ~top ~sort ~title rows);
    Format.fprintf ppf "elapsed: %.3fs@." wall_time_s;
    emit_trace trace_file trace
  in
  let doc =
    "Run one analysis under the tracer and print its hot-spot table \
     (per-Datalog-rule with $(b,--datalog), per-edge-kind otherwise), with \
     cumulative wall time and allocation per row."
  in
  Cmd.v
    (Cmd.info "profile" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ trace_arg $ top_arg $ datalog_arg $ sort_arg)

let decompile_cmd =
  let run files no_stdlib =
    let program =
      handle (Driver.load_program ~stdlib:(not no_stdlib) (sources_of files))
    in
    print_string (Pta_frontend.To_mj.program_to_source program)
  in
  let doc = "Parse, lower, and print back equivalent MJ source." in
  Cmd.v
    (Cmd.info "decompile" ~doc ~exits:common_exits)
    Term.(const run $ files_arg $ no_stdlib_arg)

let exceptions_cmd =
  let run files analysis no_stdlib timeout_s trace_file =
    let program, solver, ppf =
      load_and_solve ?timeout_s ~trace_file ~no_stdlib ~analysis files
    in
    let escapes = Pta_clients.Exceptions.escapes solver in
    List.iter
      (fun (e : Pta_clients.Exceptions.escape) ->
        Format.fprintf ppf "%s may leak:@."
          (Ir.Program.meth_qualified_name program e.meth);
        List.iter
          (fun h -> Format.fprintf ppf "    %s@." (Ir.Program.heap_name program h))
          e.exceptions)
      escapes;
    let uncaught = Pta_clients.Exceptions.uncaught_at_entries solver in
    Format.fprintf ppf
      "%d method(s) may leak exceptions; %d site(s) may escape main@."
      (List.length escapes) (List.length uncaught)
  in
  let doc = "Report which exceptions may escape which methods." in
  Cmd.v
    (Cmd.info "exceptions" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ trace_arg)

let dump_ir_cmd =
  let run files no_stdlib =
    let program =
      handle (Driver.load_program ~stdlib:(not no_stdlib) (sources_of files))
    in
    Format.printf "@[<v>%a@]@." Pta_ir.Ir_pp.pp_program program
  in
  let doc = "Parse, lower and pretty-print the IR." in
  Cmd.v
    (Cmd.info "dump-ir" ~doc ~exits:common_exits)
    Term.(const run $ files_arg $ no_stdlib_arg)

let gen_cmd =
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (or 'tiny').")
  in
  let run name =
    match Pta_workloads.Profile.by_name name with
    | None ->
      Printf.eprintf "unknown benchmark %S; available: tiny %s\n" name
        (String.concat " " Pta_workloads.Workloads.names);
      exit 2
    | Some profile -> print_string (Pta_workloads.Gen.generate profile)
  in
  let doc = "Emit a synthetic benchmark's MJ source on stdout." in
  Cmd.v (Cmd.info "gen" ~doc ~exits:common_exits) Term.(const run $ bench_arg)

let strategies_cmd =
  let run () =
    List.iter
      (fun { Strategies.name; term; description } ->
        Printf.printf "%-12s %-28s %s\n" name
          (Pta_context.Algebra.to_string term)
          description)
      Strategies.presets
  in
  let doc =
    "List available context-sensitivity strategies.  Each preset is shown \
     with its strategy-algebra expression; any such expression (or a \
     variation of one) can be passed directly to $(b,--strategy) on the \
     analysis subcommands."
  in
  Cmd.v
    (Cmd.info "strategies" ~doc ~exits:common_exits)
    Term.(const run $ const ())

let metrics_cmd =
  let output_arg =
    let doc =
      "Write the OpenMetrics dump to $(docv) instead of stdout ($(b,-) also \
       means stdout)."
    in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let datalog_arg =
    let doc =
      "Meter the reference Datalog implementation (per-rule fact counters, \
       round counter, per-relation sizes) instead of the native solver."
    in
    Arg.(value & flag & info [ "datalog" ] ~doc)
  in
  let run files analysis no_stdlib timeout_s output datalog =
    let metrics = Registry.create ~labels:[ ("analysis", analysis) ] () in
    (if datalog then begin
       let program =
         handle
           (Driver.load_program ~stdlib:(not no_stdlib) ~metrics
              (sources_of files))
       in
       let strategy = handle (Driver.strategy_of_name program analysis) in
       let budget = Pta_obs.Budget.of_seconds_opt timeout_s in
       match Pta_refimpl.Refimpl.run ~budget ~metrics program strategy with
       | (_ : Pta_refimpl.Refimpl.t) -> ()
       | exception Pta_obs.Budget.Exhausted abort ->
         Driver.report_and_exit (Driver.Timed_out { analysis; abort })
     end
     else
       let config = config_of ?timeout_s ~metrics ~progress:false () in
       ignore
         (handle
            (Driver.load_and_run ~stdlib:(not no_stdlib) ~config ~analysis
               (sources_of files))));
    write_output output (Registry.to_openmetrics metrics)
  in
  let doc =
    "Run one analysis with a live metric registry and dump it in \
     OpenMetrics text format (solver counters and histograms, per-phase GC \
     gauges; per-rule Datalog fact counters with $(b,--datalog)).  The \
     dump is deterministic: no wall-clock values are recorded, so two runs \
     on the same input are byte-identical."
  in
  Cmd.v
    (Cmd.info "metrics" ~doc ~exits:common_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ output_arg $ datalog_arg)

let heapmap_cmd =
  let format_arg =
    let doc = "Output format: $(b,text) (table) or $(b,json)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let output_arg =
    let doc = "Write the census to $(docv) ($(b,-) = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let compare_arg =
    let doc =
      "Gate the census against a blessed census JSON (as written by \
       $(b,--format json)): exit 4 if any component's retained words grew \
       by more than $(b,--tol) percent."
    in
    Arg.(value & opt (some string) None & info [ "compare" ] ~docv:"FILE" ~doc)
  in
  let tol_arg =
    let doc = "Per-component growth tolerance for $(b,--compare), percent." in
    Arg.(
      value
      & opt float Snapshot.default_thresholds.Snapshot.heap_component_tol_pct
      & info [ "tol" ] ~docv:"PCT" ~doc)
  in
  let datalog_arg =
    let doc =
      "Census the reference Datalog implementation's relations instead of \
       the native solver's supergraph."
    in
    Arg.(value & flag & info [ "datalog" ] ~doc)
  in
  let run files analysis no_stdlib timeout_s datalog format output
      compare_file tol =
    let census =
      if datalog then begin
        let program =
          handle (Driver.load_program ~stdlib:(not no_stdlib) (sources_of files))
        in
        let strategy = handle (Driver.strategy_of_name program analysis) in
        let budget = Pta_obs.Budget.of_seconds_opt timeout_s in
        match Pta_refimpl.Refimpl.run ~budget program strategy with
        | r -> Pta_refimpl.Refimpl.census r
        | exception Pta_obs.Budget.Exhausted abort ->
          Driver.report_and_exit (Driver.Timed_out { analysis; abort })
      end
      else
        let config = config_of ?timeout_s ~progress:false () in
        let _program, r =
          handle
            (Driver.load_and_run ~stdlib:(not no_stdlib) ~config ~analysis
               (sources_of files))
        in
        Solver.census r.Driver.solver
    in
    (match format with
    | `Text -> write_output output (Format.asprintf "%a" Census.pp census)
    | `Json ->
      write_output output
        (Json.to_string (stamp_build (Census.to_json census)) ^ "\n"));
    match compare_file with
    | None -> ()
    | Some path -> (
      let contents =
        match open_in_bin path with
        | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        | exception Sys_error msg ->
          Printf.eprintf "pointsto: cannot read %s: %s\n" path msg;
          exit 2
      in
      let baseline =
        match Result.bind (Json.of_string contents) Census.of_json with
        | Ok c -> c
        | Error e ->
          Printf.eprintf "pointsto: %s: %s\n" path e;
          exit 2
      in
      match
        Census.compare_components ~tol_pct:tol
          ~baseline:baseline.Census.components
          ~current:census.Census.components
      with
      | [] ->
        Printf.eprintf "heapmap: all components within %.1f%% of %s\n" tol path
      | breaches ->
        List.iter
          (fun (b : Census.breach) ->
            Printf.eprintf
              "heapmap: %s retained %d words, baseline %d (+%.1f%% > %.1f%%)\n"
              b.Census.b_name b.Census.b_cur_words b.Census.b_base_words
              b.Census.b_pct tol)
          breaches;
        exit 4)
  in
  let heapmap_exits =
    Cmd.Exit.info 4
      ~doc:"($(b,--compare)) when any component breaches the tolerance."
    :: common_exits
  in
  let doc =
    "Run one analysis and print the reachable-heap census: live words \
     attributed to named solver components (points-to sets, edge lists, \
     context tables, ...), with retained vs unshared words and the \
     structural-sharing factor per component, plus the points-to set \
     population histogram."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "The census runs after the solve, walks the reachable heap with \
         physical-identity awareness (a block shared between components is \
         charged once, to the first component that reaches it), and is \
         byte-deterministic: two runs on the same input produce \
         cmp-identical JSON.  $(b,--compare) gates the fresh census \
         against a blessed one, flagging components whose retained words \
         grew beyond the tolerance — the one-shot form of the per-component \
         check that $(b,bench trend --check) applies over the ledger.";
    ]
  in
  Cmd.v
    (Cmd.info "heapmap" ~doc ~man ~exits:heapmap_exits)
    Term.(
      const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg
      $ datalog_arg $ format_arg $ output_arg $ compare_arg $ tol_arg)

(* ------------------------------------------------------------------ *)
(* bench: the perf-trajectory commands                                  *)
(* ------------------------------------------------------------------ *)

(* The bench commands never parse MJ or run an analysis, so they have
   their own exit vocabulary. *)
let bench_exits =
  [
    Cmd.Exit.info 1
      ~doc:"($(b,bisect)) when the latest ledger record is within threshold \
            — there is nothing to bisect.";
    Cmd.Exit.info 2
      ~doc:"on a missing, corrupt or unsupported ledger or snapshot, or a \
            malformed argument.";
    Cmd.Exit.info 4
      ~doc:"($(b,trend --check)) when any cell of the latest record is \
            flagged as a regression.";
  ]
  @ Cmd.Exit.defaults

let fail_usage fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "pointsto: %s\n" msg;
      exit 2)
    fmt

let read_file path =
  match open_in_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  | exception Sys_error msg -> fail_usage "cannot read %s: %s" path msg

let load_ledger path =
  match Hledger.load path with Ok rs -> rs | Error e -> fail_usage "%s" e

let load_snapshot path =
  match Snapshot.of_string (read_file path) with
  | Ok s -> s
  | Error e -> fail_usage "%s: %s" path e

let rec ensure_dir d =
  if not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let ledger_arg =
  let doc = "The bench-history ledger (JSONL, one record per line)." in
  Arg.(
    value & opt string "bench/history.jsonl"
    & info [ "ledger" ] ~docv:"FILE" ~doc)

(* Detection parameters, shared by trend and bisect.  The tolerance
   defaults are the same ones the one-shot bench --compare gate uses. *)
let window_arg =
  let doc = "Sliding-window length: finished observations per cell." in
  Arg.(value & opt int Htrend.default_params.Htrend.window
       & info [ "window" ] ~docv:"N" ~doc)

let min_points_arg =
  let doc = "Observations required before the changepoint test fires." in
  Arg.(value & opt int Htrend.default_params.Htrend.min_points
       & info [ "min-points" ] ~docv:"N" ~doc)

let mad_k_arg =
  let doc = "MAD multiplier: flag values above median + $(docv)*1.4826*MAD." in
  Arg.(value & opt float Htrend.default_params.Htrend.mad_k
       & info [ "mad-k" ] ~docv:"K" ~doc)

let time_tol_arg =
  let doc = "Relative floor for the time threshold, percent over the median." in
  Arg.(value & opt float Snapshot.default_thresholds.Snapshot.time_tol_pct
       & info [ "time-tol" ] ~docv:"PCT" ~doc)

let heap_tol_arg =
  let doc = "Relative floor for the peak-heap threshold, percent over the median." in
  Arg.(value & opt float Snapshot.default_thresholds.Snapshot.heap_tol_pct
       & info [ "heap-tol" ] ~docv:"PCT" ~doc)

let heap_component_tol_arg =
  let doc =
    "Relative floor for the per-census-component retained-heap thresholds, \
     percent over the median."
  in
  Arg.(
    value
    & opt float Snapshot.default_thresholds.Snapshot.heap_component_tol_pct
    & info [ "heap-component-tol" ] ~docv:"PCT" ~doc)

let min_time_arg =
  let doc = "Noise floor: skip the time check when the median is below $(docv) seconds." in
  Arg.(value & opt float Snapshot.default_thresholds.Snapshot.min_time_s
       & info [ "min-time" ] ~docv:"SECONDS" ~doc)

let params_term =
  let make window min_points mad_k time_tol heap_tol heap_component_tol
      min_time =
    {
      Htrend.window;
      min_points;
      mad_k;
      tolerances =
        {
          Snapshot.time_tol_pct = time_tol;
          heap_tol_pct = heap_tol;
          heap_component_tol_pct = heap_component_tol;
          min_time_s = min_time;
        };
    }
  in
  Term.(
    const make $ window_arg $ min_points_arg $ mad_k_arg $ time_tol_arg
    $ heap_tol_arg $ heap_component_tol_arg $ min_time_arg)

let history_append_cmd =
  let snapshot_arg =
    let doc =
      "The benchmark snapshot to append (e.g. $(b,BENCH_table1.json), or the \
       file written by $(b,bench/main.exe --snapshot-out))."
    in
    Arg.(
      required & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE" ~doc)
  in
  let note_arg =
    let doc = "Free-form provenance note stored in the record (e.g. $(b,ci))." in
    Arg.(value & opt (some string) None & info [ "note" ] ~docv:"TEXT" ~doc)
  in
  let timestamp_arg =
    let doc = "Record timestamp as unix seconds (omitted = no timestamp)." in
    Arg.(value & opt (some float) None & info [ "timestamp" ] ~docv:"SECONDS" ~doc)
  in
  let now_arg =
    let doc = "Stamp the record with the current time." in
    Arg.(value & flag & info [ "now" ] ~doc)
  in
  let run ledger snapshot note timestamp now =
    let snap = load_snapshot snapshot in
    let timestamp = if now then Some (Unix.time ()) else timestamp in
    let record =
      match
        Hrecord.of_snapshot ~seq:0 ?timestamp ?note
          ~host:
            (Hrecord.current_host
               ~cores:(Pta_solver.Par.recommended_domains ())
               ())
          snap
      with
      | Ok r -> r
      | Error e -> fail_usage "%s: %s" snapshot e
    in
    match Hledger.append ~path:ledger record with
    | Ok r -> print_endline (Hledger.describe r)
    | Error e -> fail_usage "%s" e
  in
  let doc =
    "Validate the ledger and append one record derived from a benchmark \
     snapshot.  The record's build stamp comes from the snapshot's own \
     $(b,pointsto) field — the binary that measured — and is mandatory; the \
     host fingerprint honours $(b,PTA_BENCH_HOST)."
  in
  Cmd.v
    (Cmd.info "append" ~doc ~exits:bench_exits)
    Term.(
      const run $ ledger_arg $ snapshot_arg $ note_arg $ timestamp_arg
      $ now_arg)

let history_list_cmd =
  let run ledger =
    List.iter (fun r -> print_endline (Hledger.describe r)) (load_ledger ledger)
  in
  let doc = "List the ledger, one line per record (seq, build, host, cells)." in
  Cmd.v (Cmd.info "list" ~doc ~exits:bench_exits) Term.(const run $ ledger_arg)

let history_show_cmd =
  let seq_arg =
    let doc = "Record to show (default: the latest)." in
    Arg.(value & pos 0 (some int) None & info [] ~docv:"SEQ" ~doc)
  in
  let run ledger seq =
    let records = load_ledger ledger in
    let record =
      match seq with
      | None -> (
        match List.rev records with
        | r :: _ -> r
        | [] -> fail_usage "%s: empty ledger" ledger)
      | Some s -> (
        match List.find_opt (fun r -> r.Hrecord.seq = s) records with
        | Some r -> r
        | None -> fail_usage "%s: no record with seq %d" ledger s)
    in
    print_endline (Json.to_string (Hrecord.to_json record))
  in
  let doc = "Print one ledger record as JSON." in
  Cmd.v
    (Cmd.info "show" ~doc ~exits:bench_exits)
    Term.(const run $ ledger_arg $ seq_arg)

let history_cmd =
  let doc = "Inspect and append to the bench-history ledger." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "The ledger is an append-only JSONL file (one JSON record per line, \
         schema-versioned) accumulating one record per benchmark run: build \
         stamp (commit, dirty flag, OCaml version, dune profile), host \
         fingerprint, and per-cell wall time, iterations, supergraph nodes, \
         peak heap and a solve-time histogram.  Loading is strict — a \
         corrupt line or a record from an unsupported schema refuses the \
         whole ledger rather than silently skipping.";
    ]
  in
  Cmd.group
    (Cmd.info "history" ~doc ~man ~exits:bench_exits)
    [ history_append_cmd; history_list_cmd; history_show_cmd ]

let trend_cmd =
  let out_arg =
    let doc =
      "Write the static trend report (index.html plus one SVG sparkline per \
       cell and metric) into $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR" ~doc)
  in
  let check_arg =
    let doc =
      "Gate the latest record: flag any cell whose time or peak heap \
       crosses its sliding-window median + MAD threshold (or that newly \
       timed out), and exit 4 if anything is flagged."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run ledger out check params =
    let records = load_ledger ledger in
    let page = Htrend.page ~params ~ledger records in
    (match out with
    | None -> ()
    | Some dir ->
      ensure_dir dir;
      let files = Trend_page.render page in
      List.iter
        (fun (name, contents) ->
          write_file (Filename.concat dir name) contents)
        files;
      Printf.printf "wrote %d files to %s\n" (List.length files) dir);
    print_endline page.Trend_page.p_subtitle;
    if check then
      match Htrend.check_latest ~params records with
      | Error e -> fail_usage "%s" e
      | Ok [] -> print_endline "trend check: latest record within thresholds"
      | Ok flags ->
        List.iter
          (fun f -> Format.printf "FLAGGED %a@." Htrend.pp_flag f)
          flags;
        Printf.printf "trend check: %d flag(s) on the latest record\n"
          (List.length flags);
        exit 4
  in
  let doc =
    "Render the perf-trend report from the ledger and optionally gate the \
     latest record against its own history."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "The report is byte-deterministic: rendering the same ledger twice \
         produces cmp-identical HTML and SVG, so CI can cache and diff the \
         artifact.  The changepoint check is robust (median + MAD over a \
         sliding window of finished observations) with the same tolerance \
         floors as the one-shot bench $(b,--compare) gate; cells with fewer \
         than $(b,--min-points) observations pass, so newly added analyses \
         are not flagged while their history accumulates.";
    ]
  in
  Cmd.v
    (Cmd.info "trend" ~doc ~man ~exits:bench_exits)
    Term.(const run $ ledger_arg $ out_arg $ check_arg $ params_term)

let bisect_cmd =
  let cell_arg =
    let doc =
      "The cell to bisect, as $(i,BENCHMARK)/$(i,ANALYSIS), or \
       $(i,BENCHMARK)/$(i,ANALYSIS)$(b,@j)$(i,N) for a parallel cell \
       measured at $(i,N) worklist domains."
    in
    Arg.(
      required & opt (some string) None & info [ "cell" ] ~docv:"B/A" ~doc)
  in
  let metric_arg =
    let doc =
      "Metric to bisect: $(b,time), $(b,heap), or \
       $(b,heap:)$(i,COMPONENT) for one census component's retained words."
    in
    let metric_conv =
      Arg.conv
        ( (fun s ->
            match Htrend.metric_of_string s with
            | Ok m -> Ok m
            | Error e -> Error (`Msg e)),
          fun ppf m -> Format.pp_print_string ppf (Htrend.metric_name m) )
    in
    Arg.(value & opt metric_conv Htrend.Time & info [ "metric" ] ~docv:"METRIC" ~doc)
  in
  let git_arg =
    let doc =
      "Also emit a $(b,git bisect run) script spanning the last-good and \
       first-bad commits, re-measuring just this cell per step."
    in
    Arg.(value & flag & info [ "git" ] ~doc)
  in
  let script_out_arg =
    let doc = "Where to write the git-bisect script ($(b,-) = stdout)." in
    Arg.(value & opt string "-" & info [ "script-out" ] ~docv:"FILE" ~doc)
  in
  let baseline_out_arg =
    let doc =
      "Where to write the single-cell baseline snapshot the script compares \
       against (reconstructed from the last-good record)."
    in
    Arg.(
      value
      & opt string "BENCH_bisect_baseline.json"
      & info [ "baseline-out" ] ~docv:"FILE" ~doc)
  in
  let run ledger cell metric git script_out baseline_out params =
    let benchmark, analysis =
      match String.index_opt cell '/' with
      | Some i ->
        ( String.sub cell 0 i,
          String.sub cell (i + 1) (String.length cell - i - 1) )
      | None -> fail_usage "--cell expects BENCHMARK/ANALYSIS, got %S" cell
    in
    (* "S-2obj+H@j4" names the cell measured at 4 worklist domains —
       the same rendering the trend page and flags use. *)
    let analysis, jobs =
      match String.rindex_opt analysis '@' with
      | Some i
        when i + 1 < String.length analysis && analysis.[i + 1] = 'j' -> (
        let n = String.sub analysis (i + 2) (String.length analysis - i - 2) in
        match int_of_string_opt n with
        | Some j when j >= 1 -> (String.sub analysis 0 i, j)
        | _ -> fail_usage "--cell: bad jobs suffix in %S (want @jN)" cell)
      | _ -> (analysis, 1)
    in
    let records = load_ledger ledger in
    match Hbisect.run ~params ~jobs ~metric ~benchmark ~analysis records with
    | Error e -> fail_usage "%s" e
    | Ok None ->
      Printf.printf
        "%s/%s: latest record is within the anchor threshold; nothing to \
         bisect\n"
        benchmark
        (Htrend.cell_label ~analysis ~jobs);
      exit 1
    | Ok (Some o) ->
      Format.printf "%a@." Hbisect.pp_outcome o;
      if git then begin
        let good =
          match o.Hbisect.last_good with
          | Some g -> g
          | None -> fail_usage "no good record to baseline the git run on"
        in
        let snap =
          match Hbisect.baseline_snapshot ~jobs good ~benchmark ~analysis with
          | Ok s -> s
          | Error e -> fail_usage "%s" e
        in
        match Hbisect.git_script o ~ledger ~baseline_file:baseline_out with
        | Error e -> fail_usage "%s" e
        | Ok script ->
          write_file baseline_out (Json.to_string (Snapshot.to_json snap));
          write_output script_out script;
          if not (String.equal script_out "-") then
            Printf.printf "wrote %s and %s; inspect, then run the script\n"
              script_out baseline_out
      end
  in
  let doc =
    "Find the first ledger record at which a cell crossed its regression \
     threshold, and optionally hand off to $(b,git bisect)."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "The anchor baseline is the median + MAD threshold of the cell's \
         first $(b,--window) finished observations; a record is bad when \
         its value exceeds that threshold (or it times out).  Against a \
         step regression the predicate is monotone, so binary search finds \
         the boundary in O(log n) probes — each probe is reported, so a \
         noisy history shows up in the log instead of being silently \
         misattributed.  When the ledger is sparse (many commits between \
         the last-good and first-bad records), $(b,--git) narrows further: \
         it emits a $(b,git bisect run) recipe re-measuring just this cell \
         per candidate commit against a baseline snapshot reconstructed \
         from the last-good record.  The script is written for inspection, \
         never executed by this command.";
    ]
  in
  Cmd.v
    (Cmd.info "bisect" ~doc ~man ~exits:bench_exits)
    Term.(
      const run $ ledger_arg $ cell_arg $ metric_arg $ git_arg
      $ script_out_arg $ baseline_out_arg $ params_term)

let bench_cmd =
  let doc =
    "Perf trajectory over time: the bench-history ledger, trend report, \
     regression gate and auto-bisect."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Workflow: a benchmark run writes a snapshot \
         ($(b,bench/main.exe --snapshot-out)); $(b,history append) archives \
         it as one ledger record; $(b,trend) renders sparklines over the \
         accumulated records and $(b,trend --check) gates the latest one \
         against its own history; when a regression is flagged, $(b,bisect) \
         locates the first bad record and can hand off to $(b,git bisect) \
         to narrow it to a commit.";
    ]
  in
  Cmd.group
    (Cmd.info "bench" ~doc ~man ~exits:bench_exits)
    [ history_cmd; trend_cmd; bisect_cmd ]

let version_cmd =
  let json_arg =
    let doc = "Emit the stamp as a JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run json =
    if json then print_endline (Json.to_string (Version.to_json ()))
    else print_endline (Version.to_string ())
  in
  let doc =
    "Print the build stamp: semantic version, git commit, OCaml compiler \
     version, and dune profile.  The same stamp is embedded in \
     $(b,--stats-json) documents and benchmark snapshots."
  in
  Cmd.v (Cmd.info "version" ~doc) Term.(const run $ json_arg)

let main_cmd =
  let doc = "Hybrid context-sensitive points-to analysis for MJ programs" in
  let info = Cmd.info "pointsto" ~version:"1.0.0" ~doc ~exits:common_exits in
  Cmd.group info
    [
      analyze_cmd; compare_cmd; check_cmd; taint_cmd; profile_cmd; query_cmd;
      why_cmd; casts_cmd; exceptions_cmd; callgraph_cmd; stats_cmd;
      dump_ir_cmd; decompile_cmd; gen_cmd; strategies_cmd; metrics_cmd;
      heapmap_cmd; bench_cmd; version_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
